// Package corpus is the evaluation substrate standing in for the Yahoo!
// Answers question set used in the paper's demonstration: forum-style NL
// questions across the demo's domains (travel, shopping, health, food),
// each with gold annotations — whether verification should accept it,
// and which individual expressions a perfect IX detector would find.
//
// The corpus drives experiment E7 (translation quality without user
// interaction, §4.1), E8 (the demo's forum-question stage), E10 (the
// unsupported-question stage) and the A1/A2 ablations.
package corpus

// GoldIX is one expected individual expression: the lemma of its anchor
// token plus the individuality types it exhibits.
type GoldIX struct {
	// AnchorLemma is the lemma of the IX's anchor (verb or opinion word).
	AnchorLemma string
	// Types are the expected individuality types (lexical, participant,
	// syntactic).
	Types []string
}

// Question is one corpus entry.
type Question struct {
	// ID is a stable identifier ("travel-01").
	ID string
	// Domain groups questions as in the demo ("travel", "shopping",
	// "health", "food", "general").
	Domain string
	// Text is the NL question.
	Text string
	// Supported is the gold verification verdict.
	Supported bool
	// UnsupportedCategory is the expected rejection category for
	// unsupported questions ("descriptive", "causal", "aggregate",
	// "multiple").
	UnsupportedCategory string
	// Gold lists the expected IXs; empty for purely general questions.
	Gold []GoldIX
}

// HasGoldAnchor reports whether the gold annotation contains the lemma.
func (q Question) HasGoldAnchor(lemma string) bool {
	for _, g := range q.Gold {
		if g.AnchorLemma == lemma {
			return true
		}
	}
	return false
}

func ix(lemma string, types ...string) GoldIX {
	return GoldIX{AnchorLemma: lemma, Types: types}
}

// questions is the embedded corpus.
var questions = []Question{
	// ---- Travel ----
	{ID: "travel-01", Domain: "travel", Supported: true,
		Text: "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
		Gold: []GoldIX{ix("interesting", "lexical"), ix("visit", "participant", "syntactic")}},
	{ID: "travel-02", Domain: "travel", Supported: true,
		Text: "Which hotel in Vegas has the best thrill ride?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "travel-03", Domain: "travel", Supported: true,
		Text: "Where do you visit in Buffalo?",
		Gold: []GoldIX{ix("visit", "participant")}},
	{ID: "travel-04", Domain: "travel", Supported: true,
		Text: "What are the best places to visit in Buffalo with kids?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "travel-05", Domain: "travel", Supported: true,
		Text: "Which museums should we visit in the winter?",
		Gold: []GoldIX{ix("visit", "participant", "syntactic")}},
	{ID: "travel-06", Domain: "travel", Supported: true,
		Text: "Obama should visit Buffalo.",
		Gold: []GoldIX{ix("visit", "syntactic")}},
	{ID: "travel-07", Domain: "travel", Supported: true,
		Text: "Where do locals eat in Buffalo?",
		Gold: []GoldIX{ix("eat", "participant")}},
	{ID: "travel-08", Domain: "travel", Supported: true,
		Text: "Which parks are in Buffalo?",
		Gold: nil},
	{ID: "travel-09", Domain: "travel", Supported: true,
		Text: "What romantic restaurants near Canalside do you recommend?",
		Gold: []GoldIX{ix("romantic", "lexical"), ix("recommend", "lexical", "participant")}},
	{ID: "travel-10", Domain: "travel", Supported: true,
		Text: "Which beach near Buffalo is quiet in the summer?",
		Gold: []GoldIX{ix("quiet", "lexical")}},
	{ID: "travel-11", Domain: "travel", Supported: true,
		Text: "Should I stay downtown in Buffalo?",
		Gold: []GoldIX{ix("stay", "participant", "syntactic")}},
	{ID: "travel-12", Domain: "travel", Supported: true,
		Text: "Which tours do tourists take from Buffalo to Niagara Falls?",
		Gold: []GoldIX{ix("take", "participant")}},
	{ID: "travel-13", Domain: "travel", Supported: true,
		Text: "What shows should we watch in Vegas?",
		Gold: []GoldIX{ix("watch", "participant", "syntactic")}},
	{ID: "travel-14", Domain: "travel", Supported: false, UnsupportedCategory: "descriptive",
		Text: "How do I get to the airport?"},

	// ---- Shopping ----
	{ID: "shopping-01", Domain: "shopping", Supported: true,
		Text: "What type of digital camera should I buy?",
		Gold: []GoldIX{ix("buy", "participant", "syntactic")}},
	{ID: "shopping-02", Domain: "shopping", Supported: true,
		Text: "Which camera do you recommend?",
		Gold: []GoldIX{ix("recommend", "lexical", "participant")}},
	{ID: "shopping-03", Domain: "shopping", Supported: true,
		Text: "Is the Nikon D3500 reliable?",
		Gold: []GoldIX{ix("reliable", "lexical")}},
	{ID: "shopping-04", Domain: "shopping", Supported: true,
		Text: "Which phone has the best battery?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "shopping-05", Domain: "shopping", Supported: true,
		Text: "Where do people buy cheap laptops?",
		Gold: []GoldIX{ix("buy", "participant"), ix("cheap", "lexical")}},
	{ID: "shopping-06", Domain: "shopping", Supported: true,
		Text: "Which brand of laptop should I choose?",
		Gold: []GoldIX{ix("choose", "participant", "syntactic")}},
	{ID: "shopping-07", Domain: "shopping", Supported: true,
		Text: "What gifts should I bring from Buffalo?",
		Gold: []GoldIX{ix("bring", "participant", "syntactic")}},
	{ID: "shopping-08", Domain: "shopping", Supported: true,
		// Counting question: translates to a global COUNT aggregate.
		Text: "How many cameras does Canon sell?",
		Gold: nil},
	{ID: "shopping-09", Domain: "shopping", Supported: false, UnsupportedCategory: "aggregate",
		// Mass quantity over an unstated measure: still rejected.
		Text: "How much does a good camera cost?"},

	// ---- Health ----
	{ID: "health-01", Domain: "health", Supported: true,
		Text: "Is chocolate milk good for kids?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "health-02", Domain: "health", Supported: true,
		Text: "How often do you exercise in the winter?",
		Gold: []GoldIX{ix("exercise", "participant")}},
	{ID: "health-03", Domain: "health", Supported: true,
		Text: "Should I drink coffee in the morning?",
		Gold: []GoldIX{ix("drink", "participant", "syntactic")}},
	{ID: "health-04", Domain: "health", Supported: true,
		Text: "Which snacks are healthy for children?",
		Gold: []GoldIX{ix("healthy", "lexical")}},
	{ID: "health-05", Domain: "health", Supported: false, UnsupportedCategory: "causal",
		Text: "Why is sugar bad for kids?"},
	{ID: "health-06", Domain: "health", Supported: false, UnsupportedCategory: "descriptive",
		Text: "How should I store coffee?"},
	{ID: "health-07", Domain: "health", Supported: true,
		Text: "At what container should I store coffee?",
		Gold: []GoldIX{ix("store", "participant", "syntactic")}},
	{ID: "health-08", Domain: "health", Supported: true,
		Text: "Is green tea better than coffee?",
		Gold: []GoldIX{ix("good", "lexical")}},

	// ---- Food ----
	{ID: "food-01", Domain: "food", Supported: true,
		Text: "Which dishes rich in fiber do people cook in the winter?",
		Gold: []GoldIX{ix("cook", "participant")}},
	{ID: "food-02", Domain: "food", Supported: true,
		Text: "What are the most delicious dishes in Buffalo?",
		Gold: []GoldIX{ix("delicious", "lexical")}},
	{ID: "food-03", Domain: "food", Supported: true,
		Text: "What do you eat for breakfast?",
		Gold: []GoldIX{ix("eat", "participant")}},
	{ID: "food-04", Domain: "food", Supported: true,
		Text: "Which foods do kids like?",
		Gold: []GoldIX{ix("like", "lexical", "participant")}},
	{ID: "food-05", Domain: "food", Supported: true,
		Text: "Should we order the bean chili at Anchor Bar?",
		Gold: []GoldIX{ix("order", "participant", "syntactic")}},
	{ID: "food-06", Domain: "food", Supported: true,
		Text: "Is oatmeal a good breakfast for adults?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "food-07", Domain: "food", Supported: true,
		Text: "Where do locals drink coffee in Buffalo?",
		Gold: []GoldIX{ix("drink", "participant")}},
	{ID: "food-08", Domain: "food", Supported: true,
		Text: "What desserts do people enjoy in the summer?",
		Gold: []GoldIX{ix("enjoy", "lexical", "participant")}},
	{ID: "food-09", Domain: "food", Supported: false, UnsupportedCategory: "causal",
		Text: "Why do people like chocolate?"},
	{ID: "food-10", Domain: "food", Supported: false, UnsupportedCategory: "descriptive",
		Text: "How to make good coffee?"},

	// ---- General ----
	{ID: "general-01", Domain: "general", Supported: true,
		Text: "Who serves the best pizza in Buffalo?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "general-02", Domain: "general", Supported: false, UnsupportedCategory: "descriptive",
		Text: "Explain the rules of chess."},
	{ID: "general-03", Domain: "general", Supported: false, UnsupportedCategory: "causal",
		Text: "For what purpose do people travel?"},
	{ID: "general-04", Domain: "general", Supported: false, UnsupportedCategory: "causal",
		Text: "What is the reason people like Buffalo?"},
	{ID: "general-05", Domain: "general", Supported: false, UnsupportedCategory: "multiple",
		Text: "Where should we eat? And what should we order?"},
	{ID: "general-06", Domain: "general", Supported: true,
		Text: "We visit parks in the fall.",
		Gold: []GoldIX{ix("visit", "participant")}},

	// ---- Adversarial entries ----
	// Questions chosen to stress the detector: sentiment-lexicon words
	// in objective use (false-positive bait) and individual meanings
	// carried by constructions outside the pattern set (false-negative
	// bait). They keep the E7 quality measurement honest.
	{ID: "hard-01", Domain: "travel", Supported: true,
		// "free" is in the opinion lexicon but here it is a recorded
		// fact, not an opinion.
		Text: "Which restaurants in Buffalo have free parking?",
		Gold: nil},
	{ID: "hard-02", Domain: "travel", Supported: true,
		// "fun" is usually tagged as a noun, which the adjective
		// patterns miss.
		Text: "What attractions near Forest Hotel are fun for children?",
		Gold: []GoldIX{ix("fun", "lexical")}},
	{ID: "hard-03", Domain: "travel", Supported: true,
		Text: "Is Niagara Falls worth seeing in the winter?",
		Gold: []GoldIX{ix("worth", "lexical")}},
	{ID: "hard-04", Domain: "travel", Supported: true,
		Text: "Which hotels offer a quiet room with a view?",
		Gold: []GoldIX{ix("quiet", "lexical")}},
	{ID: "hard-05", Domain: "food", Supported: true,
		Text: "Where can I find fresh vegetables in Buffalo?",
		Gold: []GoldIX{ix("find", "participant"), ix("fresh", "lexical")}},
	{ID: "hard-06", Domain: "travel", Supported: true,
		Text: "What is the cheapest way to get to Niagara Falls?",
		Gold: []GoldIX{ix("cheap", "lexical")}},
	{ID: "hard-07", Domain: "travel", Supported: true,
		Text: "Do locals take the subway at night?",
		Gold: []GoldIX{ix("take", "participant")}},
	{ID: "hard-08", Domain: "travel", Supported: true,
		// comparative over recorded facts: no individual parts.
		Text: "Which city has a bigger zoo, Buffalo or Chicago?",
		Gold: nil},
	{ID: "hard-09", Domain: "travel", Supported: true,
		// "open" is a recorded fact (opening hours), not an opinion.
		Text: "Are the botanical gardens open in the winter?",
		Gold: nil},
	{ID: "hard-10", Domain: "shopping", Supported: true,
		Text: "What camera brands do professional photographers prefer?",
		Gold: []GoldIX{ix("prefer", "lexical")}},
	{ID: "hard-11", Domain: "food", Supported: true,
		Text: "Smoothies are a popular breakfast in California.",
		Gold: []GoldIX{ix("popular", "lexical")}},
	{ID: "hard-12", Domain: "food", Supported: true,
		Text: "Which dish at Anchor Bar is overrated?",
		Gold: []GoldIX{ix("overrated", "lexical")}},
	{ID: "hard-13", Domain: "travel", Supported: true,
		Text: "Can you suggest a good hotel near the airport?",
		Gold: []GoldIX{ix("suggest", "lexical", "participant"), ix("good", "lexical")}},
	{ID: "hard-14", Domain: "travel", Supported: true,
		// "top floor" is a location, not a judgement; "scary" is one.
		Text: "Is the top floor of the Stratosphere scary?",
		Gold: []GoldIX{ix("scary", "lexical")}},
	{ID: "hard-15", Domain: "travel", Supported: true,
		Text: "What are the opening hours of the Buffalo Zoo?",
		Gold: nil},

	// ---- Entertainment ----
	{ID: "entertainment-01", Domain: "entertainment", Supported: true,
		Text: "Which casino has the best shows?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "entertainment-02", Domain: "entertainment", Supported: true,
		Text: "Do people enjoy the Fountains of Bellagio at night?",
		Gold: []GoldIX{ix("enjoy", "lexical", "participant")}},
	{ID: "entertainment-03", Domain: "entertainment", Supported: true,
		Text: "Should we watch the fountain show in the evening?",
		Gold: []GoldIX{ix("watch", "participant", "syntactic")}},
	{ID: "entertainment-04", Domain: "entertainment", Supported: true,
		Text: "What music do locals listen to in Buffalo?",
		Gold: []GoldIX{ix("listen", "participant")}},
	{ID: "entertainment-05", Domain: "entertainment", Supported: true,
		// "fun" usually tags as a noun: recall bait.
		Text: "Is the Adventuredome fun for teenagers?",
		Gold: []GoldIX{ix("fun", "lexical")}},
	{ID: "entertainment-06", Domain: "entertainment", Supported: false, UnsupportedCategory: "causal",
		Text: "Why do people gamble?"},
	{ID: "entertainment-07", Domain: "entertainment", Supported: true,
		// Counting question over recorded facts; the parse is rough
		// (the verb reads as a noun) but the count still translates.
		Text: "How many shows run nightly in Vegas?",
		Gold: nil},
	{ID: "entertainment-08", Domain: "entertainment", Supported: true,
		Text: "Which show at the Bellagio is overrated?",
		Gold: []GoldIX{ix("overrated", "lexical")}},

	// ---- Analytic (counting) questions ----
	// Aggregate readings the tentpole ships end-to-end: global counts
	// and counting superlatives over recorded facts, plus the crowd
	// majority quantifier.
	{ID: "agg-01", Domain: "travel", Supported: true,
		// Counting superlative: GROUP BY city, ORDER BY count DESC LIMIT 1.
		Text: "Which city has the most attractions?",
		Gold: nil},
	{ID: "agg-02", Domain: "travel", Supported: true,
		Text: "How many parks are in Buffalo?",
		Gold: nil},
	{ID: "agg-03", Domain: "food", Supported: true,
		// Majority quantifier on the participant: a 0.5 support threshold,
		// not a count.
		Text: "What do most people eat for breakfast?",
		Gold: []GoldIX{ix("eat", "participant")}},

	// ---- Family ----
	{ID: "family-01", Domain: "family", Supported: true,
		Text: "Which museums in Buffalo are good for kids?",
		Gold: []GoldIX{ix("good", "lexical")}},
	{ID: "family-02", Domain: "family", Supported: true,
		Text: "Where do families eat near Delaware Park?",
		Gold: []GoldIX{ix("eat", "participant")}},
	{ID: "family-03", Domain: "family", Supported: true,
		Text: "Should my kids swim at Woodlawn Beach in the summer?",
		Gold: []GoldIX{ix("swim", "participant", "syntactic")}},
	{ID: "family-04", Domain: "family", Supported: true,
		Text: "What snacks should I bring to the zoo?",
		Gold: []GoldIX{ix("bring", "participant", "syntactic")}},
	{ID: "family-05", Domain: "family", Supported: true,
		Text: "Is the Buffalo Zoo safe for toddlers?",
		Gold: []GoldIX{ix("safe", "lexical")}},
	{ID: "family-06", Domain: "family", Supported: true,
		Text: "Which parks have playgrounds?",
		Gold: nil},
	{ID: "family-07", Domain: "family", Supported: true,
		Text: "What do children drink for breakfast?",
		Gold: []GoldIX{ix("drink", "participant")}},
	{ID: "family-08", Domain: "family", Supported: false, UnsupportedCategory: "descriptive",
		Text: "How to plan a family trip?"},
}

// All returns the whole corpus (a copy).
func All() []Question {
	out := make([]Question, len(questions))
	copy(out, questions)
	return out
}

// Supported returns the questions that pass verification.
func Supported() []Question {
	var out []Question
	for _, q := range questions {
		if q.Supported {
			out = append(out, q)
		}
	}
	return out
}

// Unsupported returns the questions verification should reject.
func Unsupported() []Question {
	var out []Question
	for _, q := range questions {
		if !q.Supported {
			out = append(out, q)
		}
	}
	return out
}

// ByDomain returns the questions of one domain.
func ByDomain(domain string) []Question {
	var out []Question
	for _, q := range questions {
		if q.Domain == domain {
			out = append(out, q)
		}
	}
	return out
}

// Domains returns the distinct domains in corpus order.
func Domains() []string {
	var out []string
	seen := map[string]bool{}
	for _, q := range questions {
		if !seen[q.Domain] {
			seen[q.Domain] = true
			out = append(out, q.Domain)
		}
	}
	return out
}

// ByID returns the question with the given ID.
func ByID(id string) (Question, bool) {
	for _, q := range questions {
		if q.ID == id {
			return q, true
		}
	}
	return Question{}, false
}

// RunningExample is the paper's running example question (Figure 1).
const RunningExampleID = "travel-01"
