// Package qgen is NL2CM's General Query Generator: the module that
// translates the general (non-individual) parts of a parsed NL request
// into SPARQL triples aligned with the ontology. The paper plugs in FREyA
// as a black box for this role; this package implements the same three
// observable behaviours: (a) it maps NL phrases to ontology entities,
// classes and relations, emitting WHERE-clause triples; (b) it engages
// the user in clarification dialogues for ambiguous terms ("Buffalo, NY
// vs Buffalo, IL", Figure 4 of FREyA / §4.1 here); and (c) it learns from
// the user's answers, improving candidate ranking in later translations.
//
// Like FREyA in NL2CM, the generator receives the *full* request —
// including the detected IXs — and may wrongly translate individual
// parts into general triples; the Query Composition module later deletes
// triples that overlap detected IXs, which is why every emitted triple
// carries its origin token indices.
package qgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nl2cm/internal/interact"
	"nl2cm/internal/nlp"
	"nl2cm/internal/ontology"
	"nl2cm/internal/prov"
	"nl2cm/internal/rdf"
)

// Triple is a generated SPARQL triple together with the token indices
// that produced it, enabling IX-overlap deletion during composition.
type Triple struct {
	rdf.Triple
	// Origin lists the dependency-graph node indices this triple was
	// derived from.
	Origin []int
}

// TokenSet returns the triple's origin as a provenance token set
// (deduplicated, sorted, negatives dropped).
func (t Triple) TokenSet() prov.TokenSet {
	return prov.NewTokenSet(t.Origin...)
}

// Result is the generator's output.
type Result struct {
	// Triples are the WHERE-clause candidates.
	Triples []Triple
	// NodeTerms resolves noun nodes to their query terms: a variable for
	// class/unknown nouns, an ontology entity for recognized names.
	NodeTerms map[int]rdf.Term
	// TargetVar is the variable standing for the question's focus
	// ("places" in the running example); empty if none was identified.
	TargetVar string
	// Phrases records the surface phrase each resolved node stood for
	// (used by projection dialogues and admin traces).
	Phrases map[int]string
	// Unmatched lists phrases the generator could not align with the
	// ontology (FREyA would open a mapping dialogue; we record them).
	Unmatched []string
	// Delegations maps transparent nouns ("type", "kind") to the "of"
	// complement whose term they share.
	Delegations map[int]int
	// Aggregate is the detected counting reading of the request, if any
	// ("how many ...", "the most/fewest <noun>"); nil otherwise.
	Aggregate *Aggregate
	// usedVars tracks allocated variable names so later modules
	// (individual triple creation) can allocate fresh ones.
	usedVars map[string]bool
}

// FreshVar allocates a new variable name not used elsewhere in the
// query. The individual triple creator uses it for answer variables
// ("Where do you visit?" needs a variable for the asked-about place).
func (r *Result) FreshVar() string {
	if r.usedVars == nil {
		r.usedVars = map[string]bool{}
	}
	for _, v := range varNames {
		if !r.usedVars[v] {
			r.usedVars[v] = true
			return v
		}
	}
	for i := 1; ; i++ {
		v := fmt.Sprintf("x%d", i)
		if !r.usedVars[v] {
			r.usedVars[v] = true
			return v
		}
	}
}

// VarTerm returns the rdf variable term for a node, and whether the node
// resolved to a variable.
func (r *Result) VarTerm(node int) (rdf.Term, bool) {
	t, ok := r.NodeTerms[node]
	if !ok || !t.IsVar() {
		return rdf.Term{}, false
	}
	return t, true
}

// Feedback is the learned ranking store: it counts, per surface phrase,
// how often the user selected each entity, and boosts those candidates in
// later lookups ("The response of the user is recorded and serves to
// improve the ranking of optional entities in subsequent user
// interactions", paper §4.1).
//
// Feedback is the only mutable state shared between translations, so it
// guards its counts with an RWMutex: concurrent Record and Boost calls
// from parallel translations are safe.
type Feedback struct {
	mu     sync.RWMutex
	counts map[string]map[string]int
	// version counts mutations. The plan cache keys entries on it, so a
	// recorded answer (which can re-rank candidates in later lookups)
	// implicitly invalidates every translation cached before it.
	version uint64
}

// NewFeedback returns an empty store.
func NewFeedback() *Feedback {
	return &Feedback{counts: map[string]map[string]int{}}
}

// Record notes that the user chose the entity for the phrase.
func (f *Feedback) Record(phrase string, entity rdf.Term) {
	key := strings.ToLower(strings.TrimSpace(phrase))
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.counts[key]
	if !ok {
		m = map[string]int{}
		f.counts[key] = m
	}
	m[entity.Value()]++
	f.version++
}

// Version returns the mutation count: it changes whenever recorded
// feedback could change a translation, which makes it the cache-epoch
// source for translation caching.
func (f *Feedback) Version() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.version
}

// MarshalJSON serializes the learned counts so feedback can persist
// across sessions ("subsequent user interactions with the system").
func (f *Feedback) MarshalJSON() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return json.Marshal(f.counts)
}

// UnmarshalJSON restores persisted feedback.
func (f *Feedback) UnmarshalJSON(data []byte) error {
	counts := map[string]map[string]int{}
	if err := json.Unmarshal(data, &counts); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts = counts
	f.version++
	return nil
}

// Save writes the feedback store to a JSON file. The write is atomic
// (temp file + rename in the destination directory), so a crash or a
// concurrent reader never observes a truncated store — the daemon flushes
// periodically while continuing to serve.
func (f *Feedback) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("qgen: encoding feedback: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".feedback-*.json")
	if err != nil {
		return fmt.Errorf("qgen: writing feedback: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("qgen: writing feedback: %w", werr)
	}
	return nil
}

// LoadFeedback reads a persisted feedback store; a missing file yields an
// empty store, so first runs need no setup.
func LoadFeedback(path string) (*Feedback, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewFeedback(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("qgen: reading feedback: %w", err)
	}
	f := NewFeedback()
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("qgen: decoding feedback: %w", err)
	}
	return f, nil
}

// Boost returns the ranking bonus for a candidate entity of the phrase.
func (f *Feedback) Boost(phrase string, entity rdf.Term) float64 {
	key := strings.ToLower(strings.TrimSpace(phrase))
	f.mu.RLock()
	n := f.counts[key][entity.Value()]
	f.mu.RUnlock()
	if n > 10 {
		n = 10
	}
	return 0.02 * float64(n)
}

// Generator holds the ontology and learned state; it is reused across
// translations so that feedback accumulates. Generate is safe for
// concurrent use: the ontology and AmbiguityGap are read-only after
// construction and Feedback locks internally. Replacing the Feedback
// pointer (administrator reload) must not race with in-flight runs.
type Generator struct {
	Onto     *ontology.Ontology
	Feedback *Feedback
	// AmbiguityGap is the score distance under which two candidates are
	// considered ambiguous and the user is consulted.
	AmbiguityGap float64
}

// New returns a generator over the ontology with fresh feedback state.
func New(o *ontology.Ontology) *Generator {
	return &Generator{Onto: o, Feedback: NewFeedback(), AmbiguityGap: 0.25}
}

// Options configure one generation run.
type Options struct {
	// Interactor answers disambiguation questions; nil means automatic.
	Interactor interact.Interactor
	// Policy gates the disambiguation dialogue.
	Policy interact.Policy
}

func (o Options) interactor() interact.Interactor {
	if o.Interactor == nil {
		return interact.Auto{}
	}
	return o.Interactor
}

// transparentNouns delegate their denotation to their "of" complement:
// "what type of camera" denotes a camera.
var transparentNouns = map[string]bool{
	"type": true, "kind": true, "sort": true, "variety": true,
	"brand": false, // a brand is itself an entity class
}

// Generate translates the general parts of the dependency graph into
// SPARQL triples, honoring cancellation between noun resolutions (each
// of which may open a disambiguation dialogue).
func (g *Generator) Generate(ctx context.Context, dg *nlp.DepGraph, opt Options) (*Result, error) {
	res := &Result{
		NodeTerms: map[int]rdf.Term{},
		Phrases:   map[int]string{},
	}
	res.usedVars = map[string]bool{}
	res.Delegations = map[int]int{}
	gen := &run{ctx: ctx, g: g, dg: dg, opt: opt, res: res}
	if err := gen.run(); err != nil {
		return nil, err
	}
	return res, nil
}

// run carries one generation pass.
type run struct {
	ctx         context.Context
	g           *Generator
	dg          *nlp.DepGraph
	opt         Options
	res         *Result
	consumed    map[int]bool // nodes absorbed into an entity phrase
	delegations map[int]int  // transparent noun -> its "of" complement
}

func (r *run) run() error {
	r.consumed = map[int]bool{}
	r.delegations = map[int]int{}
	heads := r.nounHeads()
	// The question's focus gets the first variable name.
	target := r.focusNode(heads)
	if target >= 0 {
		if err := r.resolveNoun(target, true); err != nil {
			return err
		}
	}
	for _, n := range heads {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if n == target || r.consumed[n] {
			continue
		}
		if err := r.resolveNoun(n, false); err != nil {
			return err
		}
	}
	// Transparent nouns share their complement's term ("what type of
	// camera should I buy" — buying the type means buying the camera).
	for n, d := range r.delegations {
		if t, ok := r.res.NodeTerms[d]; ok {
			r.res.NodeTerms[n] = t
		}
	}
	r.relationTriples()
	r.detectAggregate()
	return nil
}

// nounHeads returns the noun nodes that head phrases: nouns that are not
// nn-compound parts, appositions or possessive modifiers of other nouns.
func (r *run) nounHeads() []int {
	var out []int
	for i := range r.dg.Nodes {
		n := &r.dg.Nodes[i]
		if !strings.HasPrefix(n.POS, "NN") {
			continue
		}
		switch n.Rel {
		case nlp.RelNN, nlp.RelAppos, nlp.RelPoss:
			continue
		}
		out = append(out, i)
	}
	return out
}

// focusNode finds the question focus: the root if nominal, else the
// wh-phrase target, else the subject of the root verb, else the fronted
// object.
func (r *run) focusNode(heads []int) int {
	root := r.dg.Root()
	if root < 0 {
		return -1
	}
	isHead := func(i int) bool {
		for _, h := range heads {
			if h == i {
				return true
			}
		}
		return false
	}
	if isHead(root) {
		return root
	}
	// A wh-determined noun ("which hotel", "what type of camera").
	for _, i := range heads {
		for _, d := range r.dg.Dependents(i, nlp.RelDet) {
			if strings.HasPrefix(r.dg.Nodes[d].POS, "W") {
				return r.delegate(i)
			}
		}
	}
	// Subject of the root.
	if s := r.dg.FirstDependent(root, nlp.RelNSubj); s >= 0 && isHead(s) {
		return r.delegate(s)
	}
	// Fronted or regular object.
	if o := r.dg.FirstDependent(root, nlp.RelDObj); o >= 0 && isHead(o) {
		return r.delegate(o)
	}
	return -1
}

// delegate resolves transparent nouns ("type of X") to their complement.
func (r *run) delegate(n int) int {
	if !transparentNouns[r.dg.Nodes[n].Lemma] {
		return n
	}
	for _, prep := range r.dg.Dependents(n, nlp.RelPrep) {
		if r.dg.Nodes[prep].Lemma != "of" {
			continue
		}
		if pobj := r.dg.FirstDependent(prep, nlp.RelPObj); pobj >= 0 {
			// The transparent noun and its "of" are consumed; the noun
			// will share the complement's term.
			r.consumed[n] = true
			r.consumed[prep] = true
			r.delegations[n] = pobj
			r.res.Delegations[n] = pobj
			return pobj
		}
	}
	return n
}

// entityPhrase assembles the surface phrase of a (possibly multiword,
// possibly apposed) name: nn-compound parts + the node + apposition
// chain.
func (r *run) entityPhrase(n int) (string, []int) {
	nodes := []int{n}
	for _, c := range r.dg.Dependents(n, nlp.RelNN) {
		nodes = append(nodes, c)
	}
	// Follow apposition chains ("Forest Hotel, Buffalo, NY").
	cur := n
	for {
		next := -1
		for _, a := range r.dg.Dependents(cur, nlp.RelAppos) {
			next = a
		}
		if next < 0 {
			break
		}
		nodes = append(nodes, next)
		for _, c := range r.dg.Dependents(next, nlp.RelNN) {
			nodes = append(nodes, c)
		}
		cur = next
	}
	sort.Ints(nodes)
	parts := make([]string, 0, len(nodes))
	for _, i := range nodes {
		parts = append(parts, r.dg.Nodes[i].Text)
	}
	return strings.Join(parts, " "), nodes
}

// resolveNoun maps one noun head to a term and emits its instanceOf
// triple when it denotes a class.
func (r *run) resolveNoun(n int, isTarget bool) error {
	node := &r.dg.Nodes[n]
	if node.POS == "NNP" || node.POS == "NNPS" {
		return r.resolveEntity(n)
	}
	// Common noun. Try the nn-compound phrase first ("chocolate milk",
	// "thrill ride"), then the bare lemma.
	compound, compoundNodes := r.compoundPhrase(n)
	r.res.Phrases[n] = compound
	cands := r.lookupCandidates(compound)
	usedCompound := len(compoundNodes) > 1 && len(cands) > 0 && cands[0].Score >= 0.9
	if !usedCompound {
		cands = r.lookup(node.Lemma, node.Lower)
		r.res.Phrases[n] = node.Text
	}
	// A high-confidence non-class match denotes the entity itself
	// ("fall" -> the Fall season, "chocolate milk" -> Chocolate_Milk)
	// unless the noun is the question focus, which stays a variable when
	// it denotes a class of answers.
	if len(cands) > 0 && !cands[0].IsClass && cands[0].Score >= 0.9 {
		r.res.NodeTerms[n] = cands[0].Term
		if usedCompound {
			for _, i := range compoundNodes {
				if i != n {
					r.consumed[i] = true
				}
			}
		}
		return nil
	}
	v := r.freshVar(isTarget)
	vt := rdf.NewVar(v)
	r.res.NodeTerms[n] = vt
	if isTarget {
		r.res.TargetVar = v
	}
	if len(cands) > 0 && cands[0].IsClass && cands[0].Score >= 0.9 {
		r.emit(rdf.T(vt, ontology.PredInstanceOf, cands[0].Term), n)
	} else if len(cands) == 0 {
		r.res.Unmatched = append(r.res.Unmatched, node.Text)
	}
	return nil
}

// compoundPhrase renders the nn-compound phrase of a noun head.
func (r *run) compoundPhrase(n int) (string, []int) {
	nodes := []int{n}
	for _, c := range r.dg.Dependents(n, nlp.RelNN) {
		nodes = append(nodes, c)
	}
	sort.Ints(nodes)
	parts := make([]string, 0, len(nodes))
	for _, i := range nodes {
		parts = append(parts, r.dg.Nodes[i].Text)
	}
	return strings.Join(parts, " "), nodes
}

// resolveEntity maps a proper-noun phrase to an ontology entity, engaging
// the disambiguation dialogue when several candidates tie.
func (r *run) resolveEntity(n int) error {
	phrase, nodes := r.entityPhrase(n)
	for _, i := range nodes {
		if i != n {
			r.consumed[i] = true
		}
	}
	r.res.Phrases[n] = phrase
	cands := r.lookupCandidates(phrase)
	if len(cands) == 0 {
		// Unknown name: keep it as a literal-valued variable so the
		// query remains executable; record for the mapping dialogue.
		r.res.Unmatched = append(r.res.Unmatched, phrase)
		v := rdf.NewVar(r.freshVar(false))
		r.res.NodeTerms[n] = v
		r.emit(rdf.T(v, ontology.PredLabel, rdf.NewLiteral(phrase)), n)
		return nil
	}
	choice := 0
	ambiguous := len(cands) > 1 && cands[0].Score-cands[1].Score < r.g.AmbiguityGap
	if ambiguous && r.opt.Policy.Asks(interact.PointDisambiguation) {
		options := make([]interact.Choice, len(cands))
		for i, c := range cands {
			options[i] = interact.Choice{Label: c.Label, Description: c.Description}
		}
		var err error
		choice, err = r.opt.interactor().Disambiguate(r.ctx, phrase, options)
		if err != nil {
			return fmt.Errorf("qgen: disambiguating %q: %w", phrase, err)
		}
		if choice < 0 || choice >= len(cands) {
			return fmt.Errorf("qgen: disambiguation choice %d out of range for %q", choice, phrase)
		}
		r.g.Feedback.Record(phrase, cands[choice].Term)
	}
	r.res.NodeTerms[n] = cands[choice].Term
	return nil
}

// lookup returns candidates for a common-noun phrase, trying the lemma
// then the surface form.
func (r *run) lookup(lemma, lower string) []ontology.Candidate {
	cands := r.g.Onto.Lookup(lemma)
	if len(cands) == 0 && lower != lemma {
		cands = r.g.Onto.Lookup(lower)
	}
	return cands
}

// RankCandidates returns feedback-boosted, re-ranked candidates for a
// phrase. Score ties break on entity degree (how richly connected the
// entity is in the ontology), standing in for FREyA's popularity
// ranking: the default reading of "Buffalo" is the well-known city.
func (g *Generator) RankCandidates(phrase string) []ontology.Candidate {
	cands := g.Onto.Lookup(phrase)
	// Degrees are recomputed per call against one pinned snapshot: the
	// comparator runs O(n log n) times, every probe sees the same epoch,
	// and facts inserted a batch ago already count toward popularity.
	snap := g.Onto.Snapshot()
	degrees := make([]int, len(cands))
	for i := range cands {
		cands[i].Score += g.Feedback.Boost(phrase, cands[i].Term)
		t := cands[i].Term
		degrees[i] = snap.CountMatch(rdf.T(t, rdf.NewVar("p"), rdf.NewVar("o"))) +
			snap.CountMatch(rdf.T(rdf.NewVar("s"), rdf.NewVar("p"), t))
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return degrees[a] > degrees[b]
	})
	out := make([]ontology.Candidate, len(cands))
	for i, k := range idx {
		out[i] = cands[k]
	}
	return out
}

func (r *run) lookupCandidates(phrase string) []ontology.Candidate {
	return r.g.RankCandidates(phrase)
}

// varNames is the allocation order; the focus gets "x" as in Figure 1.
var varNames = []string{"x", "y", "z", "w", "u", "v", "s", "t"}

func (r *run) freshVar(isTarget bool) string {
	if isTarget && !r.res.usedVars["x"] {
		r.res.usedVars["x"] = true
		return "x"
	}
	return r.res.FreshVar()
}

func (r *run) emit(t rdf.Triple, origin ...int) {
	r.res.Triples = append(r.res.Triples, Triple{Triple: t, Origin: origin})
}

// term returns the resolved term for a noun node, following consumed
// transparent nouns to their delegate.
func (r *run) term(n int) (rdf.Term, bool) {
	t, ok := r.res.NodeTerms[n]
	if !ok || t == (rdf.Term{}) {
		return rdf.Term{}, false
	}
	return t, true
}

// relationTriples emits triples for prepositional and verbal relations
// between resolved nodes.
func (r *run) relationTriples() {
	dg := r.dg
	for i := range dg.Nodes {
		n := &dg.Nodes[i]
		switch {
		case n.POS == "IN" || n.POS == "TO":
			// attachment --prep--> i --pobj--> obj
			if n.Rel != nlp.RelPrep || n.Head < 0 {
				continue
			}
			obj := dg.FirstDependent(i, nlp.RelPObj)
			if obj < 0 {
				continue
			}
			objTerm, ok := r.term(obj)
			if !ok {
				continue
			}
			headTerm, ok := r.attachmentTerm(n.Head)
			if !ok {
				continue
			}
			pred, ok := r.g.Onto.LookupRelation(n.Lemma)
			if !ok {
				continue
			}
			r.emit(rdf.T(headTerm, pred, objTerm), n.Head, i, obj)
		case strings.HasPrefix(n.POS, "VB"):
			// subject --verb--> object relations that the ontology
			// models ("has", "serves", "contains").
			subj := dg.FirstDependent(i, nlp.RelNSubj)
			obj := dg.FirstDependent(i, nlp.RelDObj)
			if subj < 0 || obj < 0 {
				continue
			}
			sTerm, ok1 := r.term(subj)
			oTerm, ok2 := r.term(obj)
			if !ok1 || !ok2 {
				continue
			}
			pred, ok := r.g.Onto.LookupRelation(n.Lemma)
			if !ok {
				continue
			}
			r.emit(rdf.T(sTerm, pred, oTerm), subj, i, obj)
		case strings.HasPrefix(n.POS, "JJ"):
			// adjective-carried relations: "rich in fiber", "good for
			// kids". The relation key is "<adjective> <prep>".
			for _, prep := range dg.Dependents(i, nlp.RelPrep) {
				obj := dg.FirstDependent(prep, nlp.RelPObj)
				if obj < 0 {
					continue
				}
				objTerm, ok := r.term(obj)
				if !ok {
					continue
				}
				key := n.Lemma + " " + dg.Nodes[prep].Lemma
				pred, ok := r.g.Onto.LookupRelation(key)
				if !ok {
					continue
				}
				// The adjective attaches to a noun (amod), has a subject
				// or attributive wh-phrase (copular predicate), or
				// post-modifies the noun directly before it ("dishes
				// rich in fiber").
				var headTerm rdf.Term
				var headNode int
				resolveHead := func(idx int) {
					if idx >= 0 && headTerm == (rdf.Term{}) {
						if t, ok := r.term(idx); ok {
							headTerm, headNode = t, idx
						}
					}
				}
				if n.Rel == nlp.RelAMod && n.Head >= 0 {
					resolveHead(n.Head)
				}
				resolveHead(dg.FirstDependent(i, nlp.RelNSubj))
				resolveHead(dg.FirstDependent(i, nlp.RelAttr))
				if i > 0 && strings.HasPrefix(dg.Nodes[i-1].POS, "NN") {
					resolveHead(i - 1)
				}
				if headTerm == (rdf.Term{}) {
					continue
				}
				r.emit(rdf.T(headTerm, pred, objTerm), headNode, i, prep, obj)
			}
		}
	}
}

// attachmentTerm resolves the attachment point of a PP: a noun's term, or
// for verb/adjective attachments the term of the verb's object or
// subject noun when the verb itself is general ("places located in
// Buffalo"); individual verbs' PPs are handled by the individual triple
// creator instead, so unresolvable attachments are skipped.
func (r *run) attachmentTerm(head int) (rdf.Term, bool) {
	n := &r.dg.Nodes[head]
	if strings.HasPrefix(n.POS, "NN") {
		return r.term(head)
	}
	if n.Lemma == "be" {
		// Copular clause: "Which parks are in Buffalo?" — the PP
		// restricts the subject (or the attributive wh-phrase).
		for _, rel := range []string{nlp.RelNSubj, nlp.RelAttr} {
			if s := r.dg.FirstDependent(head, rel); s >= 0 {
				if t, ok := r.term(s); ok {
					return t, true
				}
			}
		}
		return rdf.Term{}, false
	}
	if strings.HasPrefix(n.POS, "JJ") {
		// copular predicate adjective: attach to its subject
		if s := r.dg.FirstDependent(head, nlp.RelNSubj); s >= 0 {
			return r.term(s)
		}
		if n.Rel == nlp.RelAMod && n.Head >= 0 {
			return r.term(n.Head)
		}
	}
	return rdf.Term{}, false
}
