package qgen

import (
	"strings"

	"nl2cm/internal/nlp"
)

// This file detects the analytic (counting) readings of a request —
// the quantity quantifiers the general query generator can translate
// into a grouping step instead of a plain selection:
//
//   - "How many cameras does Canon sell?"  — a global count of the
//     solution rows binding the counted noun's variable.
//   - "Which city has the most attractions?" / "Which hotel has the
//     fewest rooms?" — a counting superlative: group by the asked-about
//     entity, count the related noun, order by the count and keep the
//     top (or bottom) group.
//
// Two lookalike shapes are deliberately excluded, because they carry
// different semantics handled elsewhere:
//
//   - "most" grading an adjective ("the most interesting places")
//     is a crowd-significance superlative — the individual-expression
//     detector owns it and composition maps it to TOP-K.
//   - "most" quantifying the *subject* of a habit ("What do most
//     people eat?") asks for the majority of the crowd, not a count —
//     the individual-expression detector marks the part as Majority.

// Aggregate is a detected counting reading of the request.
type Aggregate struct {
	// CountVar is the variable of the counted noun ("attractions").
	CountVar string
	// GroupVar is the variable counted per group ("city"); empty for a
	// global count ("how many ...").
	GroupVar string
	// Alias is the output name of the count column.
	Alias string
	// Ascending is true for bottom-seeking quantifiers ("fewest"):
	// order the groups by ascending count.
	Ascending bool
	// Origin lists the quantifier token indices that triggered the
	// detection, for provenance coverage.
	Origin []int
}

// countingLemmas are the quantity quantifiers whose superlative forms
// ("most", "fewest", "least") read as counting when they quantify a
// noun. The value records whether the quantifier seeks the bottom.
var countingLemmas = map[string]bool{
	"many": false, "much": false,
	"few": true, "little": true,
}

// detectAggregate scans the dependency graph for a counting reading and
// records it on the result. It runs after noun resolution and relation
// emission, so every referenced node already has its term.
func (r *run) detectAggregate() {
	if agg := r.howManyCount(); agg != nil {
		r.setAggregate(agg)
		return
	}
	if agg := r.countingSuperlative(); agg != nil {
		r.setAggregate(agg)
	}
}

// setAggregate installs the detection, reserving the count alias so no
// later-allocated variable collides with it.
func (r *run) setAggregate(agg *Aggregate) {
	agg.Alias = "count"
	for r.res.usedVars[agg.Alias] {
		agg.Alias = "count_" + agg.Alias[6:] + "c" // count_c, count_cc, ...
	}
	r.res.usedVars[agg.Alias] = true
	r.res.Aggregate = agg
}

// howManyCount detects the global-count shape: sentence-initial "How
// many" quantifying a noun the generator resolved to a variable. ("How
// much" never reaches the generator — it asks for a mass quantity over
// an unstated measure, which verification rejects.)
func (r *run) howManyCount() *Aggregate {
	dg := r.dg
	for i := 0; i+1 < len(dg.Nodes); i++ {
		if dg.Nodes[i].Lemma != "how" || dg.Nodes[i].POS != "WRB" {
			continue
		}
		m := i + 1
		if dg.Nodes[m].Lemma != "many" {
			continue
		}
		// The counted noun: the quantifier's head when nominal, else the
		// token right after the quantifier.
		q := -1
		if h := dg.Nodes[m].Head; h >= 0 && strings.HasPrefix(dg.Nodes[h].POS, "NN") {
			q = h
		} else if m+1 < len(dg.Nodes) && strings.HasPrefix(dg.Nodes[m+1].POS, "NN") {
			q = m + 1
		}
		counted := r.nodeVar(q)
		if counted == "" {
			// Degraded parse: count the question focus instead, so the
			// request still translates.
			counted = r.res.TargetVar
		}
		if counted == "" {
			return nil
		}
		return &Aggregate{CountVar: counted, Origin: []int{i, m}}
	}
	return nil
}

// countingSuperlative detects the grouped-count shape: a superlative
// quantity quantifier ("most", "fewest") modifying the object noun of a
// verb whose subject is also variable-resolved, with a general triple
// relating the two variables. Group by the subject, count the object.
func (r *run) countingSuperlative() *Aggregate {
	dg := r.dg
	for m := range dg.Nodes {
		n := &dg.Nodes[m]
		asc, counting := countingLemmas[n.Lemma]
		if !counting || (n.POS != "JJS" && n.POS != "RBS") {
			continue
		}
		// The counted noun q and its governing verb.
		q, verb := -1, -1
		switch n.Rel {
		case nlp.RelAMod:
			// "the fewest rooms": the quantifier heads the noun directly.
			if n.Head >= 0 && strings.HasPrefix(dg.Nodes[n.Head].POS, "NN") {
				q = n.Head
				if dg.Nodes[q].Rel == nlp.RelDObj {
					verb = dg.Nodes[q].Head
				}
			}
		case nlp.RelAdvMod:
			// "has the most attractions": the quantifier attaches to the
			// verb; the counted noun is the adjacent direct object. When
			// the quantifier instead grades an adjective ("the most
			// interesting places") or precedes the *subject* ("most
			// people eat"), this is not a counting reading.
			h := n.Head
			if h < 0 || !strings.HasPrefix(dg.Nodes[h].POS, "VB") {
				continue
			}
			next := m + 1
			if next >= len(dg.Nodes) || !strings.HasPrefix(dg.Nodes[next].POS, "NN") {
				continue
			}
			if dg.Nodes[next].Rel != nlp.RelDObj || dg.Nodes[next].Head != h {
				continue
			}
			q, verb = next, h
		default:
			continue
		}
		if q < 0 || verb < 0 || !strings.HasPrefix(dg.Nodes[verb].POS, "VB") {
			continue
		}
		subj := dg.FirstDependent(verb, nlp.RelNSubj)
		counted := r.nodeVar(q)
		grouped := r.nodeVar(subj)
		if counted == "" || grouped == "" || counted == grouped {
			continue
		}
		// The grouped count is only meaningful when the general part
		// relates the two variables; otherwise counting would multiply
		// unrelated rows.
		if !r.varsRelated(counted, grouped) {
			continue
		}
		origin := []int{m}
		if m > 0 && dg.Nodes[m-1].POS == "DT" {
			origin = []int{m - 1, m}
		}
		return &Aggregate{CountVar: counted, GroupVar: grouped, Ascending: asc, Origin: origin}
	}
	return nil
}

// nodeVar returns the variable name a node resolved to, or "".
func (r *run) nodeVar(n int) string {
	if n < 0 {
		return ""
	}
	if t, ok := r.res.VarTerm(n); ok {
		return t.Value()
	}
	return ""
}

// varsRelated reports whether some emitted triple mentions both
// variables.
func (r *run) varsRelated(a, b string) bool {
	for _, t := range r.res.Triples {
		hasA, hasB := false, false
		t.EachVar(func(v string) {
			if v == a {
				hasA = true
			}
			if v == b {
				hasB = true
			}
		})
		if hasA && hasB {
			return true
		}
	}
	return false
}
