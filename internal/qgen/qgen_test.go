package qgen

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/interact"
	"nl2cm/internal/nlp"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
)

func gen(t *testing.T, sentence string, opt Options) (*Generator, *Result) {
	t.Helper()
	g := New(ontology.NewDemoOntology())
	res := genWith(t, g, sentence, opt)
	return g, res
}

func genWith(t *testing.T, g *Generator, sentence string, opt Options) *Result {
	t.Helper()
	dg, err := nlp.Parse(sentence)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := g.Generate(context.Background(), dg, opt)
	if err != nil {
		t.Fatalf("Generate(%q): %v", sentence, err)
	}
	return res
}

// hasTriple reports whether the result contains a triple matching the
// rendered form.
func hasTriple(res *Result, s, p, o string) bool {
	for _, tr := range res.Triples {
		if term(tr.S) == s && term(tr.P) == p && term(tr.O) == o {
			return true
		}
	}
	return false
}

func term(t rdf.Term) string {
	if t.IsVar() {
		return "$" + t.Value()
	}
	return t.Local()
}

func dump(res *Result) string {
	var b strings.Builder
	for _, tr := range res.Triples {
		b.WriteString(term(tr.S) + " " + term(tr.P) + " " + term(tr.O) + "\n")
	}
	return b.String()
}

func TestGenerateRunningExample(t *testing.T) {
	_, res := gen(t, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?", Options{})
	if res.TargetVar != "x" {
		t.Errorf("TargetVar = %q, want x", res.TargetVar)
	}
	if !hasTriple(res, "$x", "instanceOf", "Place") {
		t.Errorf("missing {$x instanceOf Place}:\n%s", dump(res))
	}
	if !hasTriple(res, "$x", "near", "Forest_Hotel,_Buffalo,_NY") {
		t.Errorf("missing {$x near Forest_Hotel,_Buffalo,_NY}:\n%s", dump(res))
	}
	if len(res.Unmatched) != 0 {
		t.Errorf("Unmatched = %v", res.Unmatched)
	}
}

func TestGenerateVegasQuestion(t *testing.T) {
	_, res := gen(t, "Which hotel in Vegas has the best thrill ride?", Options{})
	if res.TargetVar != "x" {
		t.Errorf("TargetVar = %q", res.TargetVar)
	}
	for _, want := range [][3]string{
		{"$x", "instanceOf", "Hotel"},
		{"$x", "locatedIn", "Las_Vegas"},
		{"$y", "instanceOf", "Ride"},
		{"$x", "hasFeature", "$y"},
	} {
		if !hasTriple(res, want[0], want[1], want[2]) {
			t.Errorf("missing {%s %s %s}:\n%s", want[0], want[1], want[2], dump(res))
		}
	}
}

func TestGenerateTransparentNoun(t *testing.T) {
	_, res := gen(t, "What type of digital camera should I buy?", Options{})
	if res.TargetVar != "x" {
		t.Errorf("TargetVar = %q", res.TargetVar)
	}
	if !hasTriple(res, "$x", "instanceOf", "Camera") {
		t.Errorf("missing {$x instanceOf Camera}:\n%s", dump(res))
	}
}

func TestGenerateCompoundEntity(t *testing.T) {
	_, res := gen(t, "Is chocolate milk good for kids?", Options{})
	if !hasTriple(res, "Chocolate_Milk", "goodFor", "Kids") {
		t.Errorf("missing {Chocolate_Milk goodFor Kids}:\n%s", dump(res))
	}
}

// The goodFor triple must carry the origin of the adjective so the Query
// Composition module can delete it when "good" is a detected IX.
func TestGenerateTripleOrigins(t *testing.T) {
	_, res := gen(t, "Is chocolate milk good for kids?", Options{})
	for _, tr := range res.Triples {
		if term(tr.P) == "goodFor" {
			if len(tr.Origin) < 3 {
				t.Errorf("goodFor origin = %v, want >= 3 nodes", tr.Origin)
			}
			return
		}
	}
	t.Fatalf("goodFor triple missing:\n%s", dump(res))
}

func TestAmbiguityAutoDefaultsToMostConnected(t *testing.T) {
	_, res := gen(t, "Where do you visit in Buffalo?", Options{})
	found := false
	for _, term := range res.NodeTerms {
		if term.Local() == "Buffalo,_NY" {
			found = true
		}
	}
	if !found {
		t.Errorf("auto mode did not pick Buffalo, NY: %v", res.NodeTerms)
	}
}

func TestAmbiguityInteraction(t *testing.T) {
	g := New(ontology.NewDemoOntology())
	scripted := &interact.Scripted{DisambiguationAnswers: []int{1}}
	opt := Options{
		Interactor: scripted,
		Policy: interact.Policy{Ask: map[interact.Point]bool{
			interact.PointDisambiguation: true,
		}},
	}
	res := genWith(t, g, "Where do you visit in Buffalo?", opt)
	var chosen rdf.Term
	for _, term := range res.NodeTerms {
		if strings.HasPrefix(term.Local(), "Buffalo,_") {
			chosen = term
		}
	}
	if chosen.Local() == "Buffalo,_NY" || chosen == (rdf.Term{}) {
		t.Errorf("scripted second choice ignored; got %v", chosen)
	}
	// The answer was recorded as feedback.
	if g.Feedback.Boost("Buffalo", chosen) == 0 {
		t.Error("feedback not recorded")
	}
}

func TestFeedbackImprovesRanking(t *testing.T) {
	g := New(ontology.NewDemoOntology())
	// The user repeatedly picks Buffalo, IL.
	il := ontology.E("Buffalo,_IL")
	for i := 0; i < 5; i++ {
		g.Feedback.Record("Buffalo", il)
	}
	res := genWith(t, g, "Where do you visit in Buffalo?", Options{})
	found := false
	for _, term := range res.NodeTerms {
		if term == il {
			found = true
		}
	}
	if !found {
		t.Errorf("learned preference not applied: %v", res.NodeTerms)
	}
}

func TestFeedbackBoostCapped(t *testing.T) {
	f := NewFeedback()
	e := ontology.E("X")
	for i := 0; i < 100; i++ {
		f.Record("x", e)
	}
	if b := f.Boost("x", e); b > 0.21 {
		t.Errorf("boost = %g, want capped", b)
	}
	if f.Boost("y", e) != 0 {
		t.Error("boost for unrecorded phrase != 0")
	}
}

func TestUnknownEntityBecomesLabelConstraint(t *testing.T) {
	_, res := gen(t, "What are the best places near Zorbopolis?", Options{})
	if len(res.Unmatched) == 0 || res.Unmatched[0] != "Zorbopolis" {
		t.Errorf("Unmatched = %v", res.Unmatched)
	}
	// A label triple keeps the query executable.
	found := false
	for _, tr := range res.Triples {
		if tr.P == ontology.PredLabel && tr.O == rdf.NewLiteral("Zorbopolis") {
			found = true
		}
	}
	if !found {
		t.Errorf("no label fallback triple:\n%s", dump(res))
	}
}

func TestFreshVarAllocation(t *testing.T) {
	res := &Result{}
	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		v := res.FreshVar()
		if seen[v] {
			t.Fatalf("duplicate variable %q", v)
		}
		seen[v] = true
	}
}

func TestDisambiguationErrorPropagates(t *testing.T) {
	g := New(ontology.NewDemoOntology())
	dg, err := nlp.Parse("Where do you visit in Buffalo?")
	if err != nil {
		t.Fatal(err)
	}
	bad := &interact.Scripted{DisambiguationAnswers: []int{99}}
	_, err = g.Generate(context.Background(), dg, Options{
		Interactor: bad,
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointDisambiguation: true}},
	})
	if err == nil {
		t.Fatal("Generate with out-of-range choice succeeded")
	}
}

func TestRichInAdjectiveRelation(t *testing.T) {
	_, res := gen(t, "Which dishes are rich in fiber?", Options{})
	if !hasTriple(res, "$x", "instanceOf", "Dish") {
		t.Errorf("missing instanceOf Dish:\n%s", dump(res))
	}
	if !hasTriple(res, "$x", "richIn", "Fiber") {
		t.Errorf("missing {$x richIn Fiber}:\n%s", dump(res))
	}
}

func TestPhrasesRecorded(t *testing.T) {
	_, res := gen(t, "Which hotel in Vegas has the best thrill ride?", Options{})
	var phrases []string
	for _, p := range res.Phrases {
		phrases = append(phrases, p)
	}
	joined := strings.Join(phrases, "|")
	if !strings.Contains(joined, "hotel") || !strings.Contains(joined, "Vegas") {
		t.Errorf("Phrases = %v", res.Phrases)
	}
}
