package qgen

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
)

func TestFeedbackSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feedback.json")
	f := NewFeedback()
	il := ontology.E("Buffalo,_IL")
	for i := 0; i < 3; i++ {
		f.Record("Buffalo", il)
	}
	f.Record("Vegas", ontology.E("Las_Vegas"))
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFeedback(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Boost("Buffalo", il) != f.Boost("Buffalo", il) {
		t.Error("boost lost in round trip")
	}
	if loaded.Boost("Vegas", ontology.E("Las_Vegas")) == 0 {
		t.Error("second phrase lost")
	}
}

func TestLoadFeedbackMissingFile(t *testing.T) {
	f, err := LoadFeedback(filepath.Join(t.TempDir(), "none.json"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Boost("x", ontology.E("Y")) != 0 {
		t.Error("fresh store not empty")
	}
}

func TestLoadFeedbackCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFeedback(path); err == nil {
		t.Error("corrupt file accepted")
	}
}

// The persisted feedback drives ranking in a new session, completing the
// §4.1 "subsequent interactions" loop across process restarts.
func TestPersistedFeedbackAffectsNewGenerator(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feedback.json")
	onto := ontology.NewDemoOntology()
	il := ontology.E("Buffalo,_IL")

	g1 := New(onto)
	for i := 0; i < 3; i++ {
		g1.Feedback.Record("Buffalo", il)
	}
	if err := g1.Feedback.Save(path); err != nil {
		t.Fatal(err)
	}

	g2 := New(onto)
	loaded, err := LoadFeedback(path)
	if err != nil {
		t.Fatal(err)
	}
	g2.Feedback = loaded
	cands := g2.RankCandidates("Buffalo")
	if len(cands) == 0 || cands[0].Term != il {
		t.Errorf("persisted preference not applied: top = %v", cands[0].Term)
	}
}

func TestRankCandidatesDegreeTieBreak(t *testing.T) {
	g := New(ontology.NewDemoOntology())
	cands := g.RankCandidates("Buffalo")
	if len(cands) < 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// With no feedback, the best-connected Buffalo (NY) ranks first.
	if cands[0].Term != ontology.E("Buffalo,_NY") {
		t.Errorf("top = %v, want Buffalo,_NY", cands[0].Term)
	}
}

// TestRankCandidatesDegreeTracksStoreEpoch is the degree-staleness
// regression test: candidate degrees are recomputed per call against
// the current snapshot, so facts inserted through a store batch shift
// the popularity ranking immediately.
func TestRankCandidatesDegreeTracksStoreEpoch(t *testing.T) {
	onto := ontology.NewDemoOntology()
	g := New(onto)
	wy := ontology.E("Buffalo,_WY")
	before := g.RankCandidates("Buffalo")
	if len(before) < 3 {
		t.Fatalf("candidates = %d", len(before))
	}
	if before[0].Term == wy {
		t.Fatal("Buffalo,_WY already top-ranked; fixture changed")
	}
	// Make Wyoming's Buffalo by far the best-connected: its degree must
	// dominate on the next call, without rebuilding the generator.
	var batch rdf.Batch
	for i := 0; i < 200; i++ {
		batch.Insert = append(batch.Insert,
			rdf.T(wy, ontology.PredNear, ontology.E(fmt.Sprintf("WY_Place_%d", i))))
	}
	if _, _, _, err := onto.Store.Apply(batch); err != nil {
		t.Fatal(err)
	}
	after := g.RankCandidates("Buffalo")
	if len(after) == 0 || after[0].Term != wy {
		t.Errorf("top after degree batch = %v, want Buffalo,_WY", after[0].Term)
	}
}
