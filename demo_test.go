package nl2cm

// Integration test reproducing the paper's full demonstration scenario
// (§4.2): stage (i) translates real-life forum questions; stage (ii)
// lets volunteer users interact with the system and executes the
// generated queries on the OASSIS engine substitute; stage (iii) shows
// the feedback for questions that cannot be translated. The third
// monitor — administrator mode — is checked throughout.

import (
	"context"
	"strings"
	"testing"
)

func TestFullDemonstrationScenario(t *testing.T) {
	onto := DemoOntology()
	translator := NewTranslator(onto)
	engine := NewDemoEngine(onto)

	// ---- Stage (i): translating real-life NL requests collected from
	// web forums, observing the correspondence between query parts and
	// sentence parts.
	t.Run("stage1-forum-questions", func(t *testing.T) {
		stage1 := []struct {
			question       string
			wantWherePart  string // a fragment that must appear in WHERE
			wantCrowdPart  string // a fragment that must appear in SATISFYING
			wantIndividual string // surface text that must be detected as IX
		}{
			{
				"Which hotel in Vegas has the best thrill ride?",
				"instanceOf Hotel", `hasLabel "good"`, "best",
			},
			{
				"What type of digital camera should I buy?",
				"instanceOf Camera", "[] buy $x", "buy",
			},
			{
				"Is chocolate milk good for kids?",
				"", `Chocolate_Milk hasLabel "good"`, "good",
			},
		}
		for _, c := range stage1 {
			res, err := translator.Translate(context.Background(), c.question, Options{})
			if err != nil {
				t.Fatalf("Translate(%q): %v", c.question, err)
			}
			if !res.Verdict.Supported {
				t.Fatalf("%q rejected: %s", c.question, res.Verdict.Reason)
			}
			text := res.Query.String()
			if c.wantWherePart != "" && !strings.Contains(text, c.wantWherePart) {
				t.Errorf("%q: WHERE missing %q:\n%s", c.question, c.wantWherePart, text)
			}
			if !strings.Contains(text, c.wantCrowdPart) {
				t.Errorf("%q: SATISFYING missing %q:\n%s", c.question, c.wantCrowdPart, text)
			}
			found := false
			for _, x := range res.IXs {
				if strings.Contains(x.Text(res.Graph), c.wantIndividual) {
					found = true
				}
			}
			if !found {
				t.Errorf("%q: individual part %q not detected", c.question, c.wantIndividual)
			}
		}
	})

	// ---- Stage (ii): a volunteer user writes a question, verifies the
	// detected IXs, provides the missing significance values, and the
	// query runs on OASSIS.
	t.Run("stage2-volunteer-interaction", func(t *testing.T) {
		volunteer := &ScriptedInteractor{
			IXAnswers:        [][]bool{{true, true}},
			TopKAnswers:      []int{5},
			ThresholdAnswers: []float64{0.1},
		}
		res, err := translator.Translate(context.Background(),
			"What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
			Options{Interactor: volunteer, Policy: InteractivePolicy(), Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		// The admin monitor shows every module's output.
		if len(res.Trace) < 6 {
			t.Errorf("admin trace has %d stages", len(res.Trace))
		}
		// The dialogue transcript covers IX verification, significance
		// and projection.
		if len(res.Interactions) < 3 {
			t.Errorf("dialogue transcript has %d exchanges", len(res.Interactions))
		}
		// Execute on the crowd: the paper's expected answers surface.
		out, err := engine.Execute(context.Background(), res.Query)
		if err != nil {
			t.Fatal(err)
		}
		names := map[string]bool{}
		for _, b := range out.Bindings {
			names[b["x"].Local()] = true
		}
		if !names["Delaware_Park"] || !names["Buffalo_Zoo"] {
			t.Errorf("crowd answers = %v", names)
		}
		// The generated crowd tasks read naturally.
		q0 := out.Subclauses[0].Tasks[0].Question
		if !strings.HasPrefix(q0, "Do you agree that") {
			t.Errorf("crowd task = %q", q0)
		}
	})

	// ---- Stage (iii): unsupported questions produce warnings and tips;
	// the paper's coffee rephrasing works.
	t.Run("stage3-unsupported-feedback", func(t *testing.T) {
		res, err := translator.Translate(context.Background(), "How should I store coffee?", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict.Supported {
			t.Fatal("descriptive question accepted")
		}
		tips := strings.Join(res.Verdict.Tips, " ")
		if !strings.Contains(tips, "At what container should I store coffee?") {
			t.Errorf("tips = %q", tips)
		}
		// The rephrasing is supported and asks the crowd about storage
		// habits per container.
		res2, err := translator.Translate(context.Background(), "At what container should I store coffee?", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Verdict.Supported {
			t.Fatalf("rephrased question rejected: %s", res2.Verdict.Reason)
		}
		out, err := engine.Execute(context.Background(), res2.Query)
		if err != nil {
			t.Fatal(err)
		}
		top := ""
		best := -1.0
		for _, task := range out.Subclauses[0].Tasks {
			if task.Support > best {
				best, top = task.Support, task.Question
			}
		}
		if !strings.Contains(top, "airtight jar") {
			t.Errorf("top storage habit = %q, want the airtight jar", top)
		}
	})
}

// The demonstration uses one translator across all stages, so learned
// state persists between audience questions.
func TestDemonstrationStatePersists(t *testing.T) {
	onto := DemoOntology()
	translator := NewTranslator(onto)
	// Audience member 1 disambiguates Buffalo to Wyoming.
	opt := Options{
		Interactor: &ScriptedInteractor{DisambiguationAnswers: []int{2}},
		Policy:     Policy{Ask: map[InteractionPoint]bool{PointDisambiguation: true}},
	}
	if _, err := translator.Translate(context.Background(), "Where do you visit in Buffalo?", opt); err != nil {
		t.Fatal(err)
	}
	// Audience member 2 asks non-interactively; the learned preference
	// applies.
	res, err := translator.Translate(context.Background(), "Where do locals eat in Buffalo?", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Query.String(), "Buffalo,_WY") {
		t.Errorf("learned preference not applied:\n%s", res.Query)
	}
}
