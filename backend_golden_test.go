package nl2cm

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nl2cm/internal/corpus"
	"nl2cm/internal/emit"
	"nl2cm/internal/sparql"
)

// -update regenerates the per-backend golden emission files from the
// current emitters: go test -run TestBackendGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite the per-backend golden emission files")

// goldenFile maps each backend to its golden emission file.
var goldenFile = map[string]string{
	"oassisql": "golden_oassisql.txt",
	"sql":      "golden_sql.txt",
	"mongodb":  "golden_mongo.txt",
	"cypher":   "golden_cypher.txt",
}

// loadGoldenFile parses a golden file in the shared "=== <id>" format.
func loadGoldenFile(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	out := map[string]string{}
	var id string
	var lines []string
	flush := func() {
		if id != "" {
			out[id] = strings.Join(lines, "\n")
		}
	}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if rest, found := strings.CutPrefix(line, "=== "); found {
			flush()
			id = rest
			lines = nil
			continue
		}
		lines = append(lines, line)
	}
	flush()
	return out
}

// renderEntry formats one rendering for its golden file: the query text
// followed by any capability-fallback notes.
func renderEntry(r *Rendering) string {
	s := strings.TrimRight(r.Query, "\n")
	for _, n := range r.Notes {
		s += "\nnote: " + n
	}
	return s
}

// TestBackendGolden renders the whole supported corpus on every
// registered backend and compares against the per-backend golden files.
// Every question must emit on every backend (crowd clauses degrade with
// a note; nothing in the corpus needs a capability the dialects lack),
// and the OASSIS-QL emission must stay byte-identical to the composed
// query — one printer path, no drift.
func TestBackendGolden(t *testing.T) {
	if got := Backends(); len(got) != len(goldenFile) {
		t.Fatalf("registered backends %v do not match golden files %d", got, len(goldenFile))
	}
	tr := NewTranslator(DemoOntology())
	ctx := context.Background()
	rendered := map[string]map[string]string{}
	for name := range goldenFile {
		rendered[name] = map[string]string{}
	}
	var ids []string
	for _, q := range corpus.Supported() {
		res, err := tr.Translate(ctx, q.Text, Options{})
		if err != nil {
			t.Fatalf("%s: Translate: %v", q.ID, err)
		}
		ids = append(ids, q.ID)
		for name := range goldenFile {
			rend, err := res.Render(name)
			if err != nil {
				t.Errorf("%s: backend %s failed to emit: %v", q.ID, name, err)
				continue
			}
			if name == DefaultBackend && rend.Query != res.Query.String() {
				t.Errorf("%s: OASSIS-QL emission differs from the composed query\ngot:\n%s\nwant:\n%s",
					q.ID, rend.Query, res.Query)
			}
			rendered[name][q.ID] = renderEntry(rend)
		}
	}
	if t.Failed() {
		return
	}
	names := make([]string, 0, len(goldenFile))
	for name := range goldenFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join("testdata", goldenFile[name])
		if *updateGolden {
			var b strings.Builder
			for _, id := range ids {
				fmt.Fprintf(&b, "=== %s\n%s\n", id, rendered[name][id])
			}
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				t.Fatalf("writing %s: %v", path, err)
			}
			t.Logf("wrote %s (%d entries)", path, len(ids))
			continue
		}
		golden := loadGoldenFile(t, path)
		if len(golden) != len(ids) {
			t.Errorf("%s: %d golden entries, corpus has %d (regenerate with -update)",
				path, len(golden), len(ids))
		}
		for _, id := range ids {
			want, ok := golden[id]
			if !ok {
				t.Errorf("%s: no golden entry for %s (regenerate with -update)", path, id)
				continue
			}
			if got := rendered[name][id]; got != want {
				t.Errorf("%s: %s emission differs from golden output\ngot:\n%s\nwant:\n%s",
					id, name, got, want)
			}
		}
	}
}

// TestCorpusSQLDifferential is the cross-backend differential at corpus
// scale: for every supported question, the general (WHERE) part of the
// plan — the part the SQL emitter renders — must produce the same
// bindings from the in-memory table source (full-scan ExternalSource
// adapter) as from the native RDF store evaluator.
func TestCorpusSQLDifferential(t *testing.T) {
	onto := DemoOntology()
	tr := NewTranslator(onto)
	mem := emit.LoadMemTable(onto.Store)
	ext := &emit.Adapter{Ext: mem}
	ctx := context.Background()
	checked, aggregated := 0, 0
	for _, q := range corpus.Supported() {
		res, err := tr.Translate(ctx, q.Text, Options{})
		if err != nil {
			t.Fatalf("%s: Translate: %v", q.ID, err)
		}
		if res.Plan == nil || len(res.Plan.Where) == 0 {
			continue
		}
		if _, err := EmitBackend("sql", res.Plan); err != nil {
			t.Errorf("%s: sql emission: %v", q.ID, err)
			continue
		}
		native, err := emit.ExecuteWhere(res.Plan, onto.Store)
		if err != nil {
			t.Errorf("%s: rdf evaluation: %v", q.ID, err)
			continue
		}
		external, err := emit.ExecuteWhere(res.Plan, ext)
		if err != nil {
			t.Errorf("%s: external evaluation: %v", q.ID, err)
			continue
		}
		if a, b := bindingKeys(native), bindingKeys(external); !equalStrings(a, b) {
			t.Errorf("%s: rdf and external bindings diverge\nrdf:      %v\nexternal: %v", q.ID, a, b)
		}
		checked++
		if res.Plan.Aggregated() {
			aggregated++
		}
	}
	if checked == 0 {
		t.Fatal("no corpus question exercised the differential")
	}
	if aggregated == 0 {
		t.Fatal("no corpus question exercised the GROUP BY differential")
	}
}

// bindingKeys canonicalizes bindings into a sorted multiset of strings.
func bindingKeys(bs []sparql.Binding) []string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		var parts []string
		for _, v := range vars {
			parts = append(parts, v+"="+b[v].String())
		}
		out = append(out, strings.Join(parts, " "))
	}
	sort.Strings(out)
	return out
}

// equalStrings compares two string slices elementwise.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
