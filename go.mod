module nl2cm

go 1.22
