package nl2cm

// Crowd-mining scale benchmarks (P11): significance decisions over
// synthetic populations of 10k / 100k / 1M members, fixed full sampling
// (through the same streaming queue) versus sequential-sampling early
// termination. EXPERIMENTS.md E14 records the numbers; the answers/op
// metric shows the sequential path's sublinear member-answer cost.

import (
	"context"
	"fmt"
	"testing"
)

// benchKeys is a mix of clearly-decidable and boundary-ish tasks: the
// shape one SATISFYING subclause produces after open-variable expansion.
func benchKeys(n int) ([]string, map[string]float64) {
	keys := make([]string, n)
	truth := make(map[string]float64, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("[] visit Synth_Place_%02d", i)
		// Supports sweep 0.05..0.72, straddling the 0.35 threshold.
		truth[keys[i]] = 0.05 + 0.67*float64(i)/float64(n-1)
	}
	return keys, truth
}

func BenchmarkP11_CrowdScale(b *testing.B) {
	const tasks = 24
	const thr = 0.35
	keys, truth := benchKeys(tasks)
	for _, members := range []int{10_000, 100_000, 1_000_000} {
		pop := &Population{N: members, Seed: 7, Truth: truth, Skew: 1, SpamFraction: 0.02}
		for _, mode := range []string{"fixed", "sequential"} {
			b.Run(fmt.Sprintf("members=%d/%s", members, mode), func(b *testing.B) {
				x := NewScaleExecutorFrom(pop, ScaleConfig{})
				defer x.Close()
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x.Reset() // resample from scratch each iteration
					var err error
					if mode == "fixed" {
						_, err = x.Supports(ctx, keys, 0)
					} else {
						_, err = x.DecideThreshold(ctx, keys, thr, 0)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := x.Stats()
				b.ReportMetric(float64(st.MemberAnswers)/float64(b.N), "answers/op")
			})
		}
	}
}
