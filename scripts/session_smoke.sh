#!/usr/bin/env bash
# session_smoke.sh drives one scripted dialogue through a live nl2cmd
# daemon over HTTP: start a session, answer the verification /
# disambiguation / significance / projection questions (choosing the
# Illinois reading of "Buffalo"), and assert the chosen entity reaches
# both the final query and the persisted feedback store after a daemon
# restart. Requires curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.."
addr=127.0.0.1:8099
base="http://$addr"
workdir=$(mktemp -d)
daemon=
cleanup() {
  [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/nl2cmd" ./cmd/nl2cmd

start_daemon() {
  "$workdir/nl2cmd" -addr "$addr" -feedback "$workdir/feedback.json" "$@" &
  daemon=$!
  for _ in $(seq 50); do
    curl -fsS "$base/" >/dev/null 2>&1 && return
    sleep 0.2
  done
  echo "daemon did not come up" >&2
  exit 1
}

stop_daemon() {
  kill -TERM "$daemon"
  wait "$daemon" || true
  daemon=
}

start_daemon -feedback-flush 0 # only the shutdown write persists

snap=$(curl -fsS -X POST "$base/api/session" \
  -d '{"question": "Where do you visit in Buffalo?"}')
id=$(jq -r .id <<<"$snap")
echo "session $id started"

answer() {
  curl -fsS -X POST "$base/api/session/$id/answer" -d "$1"
}

while :; do
  state=$(jq -r .state <<<"$snap")
  case $state in done | failed | expired) break ;; esac
  kind=$(jq -r '.question.kind // empty' <<<"$snap")
  qid=$(jq -r '.question.id // empty' <<<"$snap")
  if [ -z "$kind" ]; then # pipeline still computing: poll
    sleep 0.2
    snap=$(curl -fsS "$base/api/session/$id")
    continue
  fi
  echo "answering $kind: $(jq -r .question.prompt <<<"$snap")"
  case $kind in
  ix-verify)
    accept=$(jq '[range(.question.spans | length) | true]' <<<"$snap")
    snap=$(answer "{\"question\": $qid, \"accept\": $accept}")
    ;;
  choice)
    pick=$(jq '[.question.choices | to_entries[]
      | select((.value.Label + " " + .value.Description) | test("Illinois"))
      | .key] | (.[0] // 0)' <<<"$snap")
    snap=$(answer "{\"question\": $qid, \"choice\": $pick}")
    ;;
  number)
    def=$(jq '.question.default // 0' <<<"$snap")
    snap=$(answer "{\"question\": $qid, \"number\": $def}")
    ;;
  projection)
    accept=$(jq '[range(.question.vars | length) | true]' <<<"$snap")
    snap=$(answer "{\"question\": $qid, \"accept\": $accept}")
    ;;
  *)
    echo "unknown question kind $kind" >&2
    exit 1
    ;;
  esac
done

[ "$(jq -r .state <<<"$snap")" = done ] || {
  echo "session ended in state $(jq -r .state <<<"$snap"): $snap" >&2
  exit 1
}
jq -r .query <<<"$snap" | grep -q 'Buffalo,_IL' || {
  echo "final query does not use the chosen entity:" >&2
  jq -r .query <<<"$snap" >&2
  exit 1
}
echo "final query uses Buffalo,_IL"

# Shutdown persists the feedback store atomically; a restarted daemon
# must have loaded the chosen entity's count.
stop_daemon
grep -q 'Buffalo,_IL' "$workdir/feedback.json" || {
  echo "feedback store missing the chosen entity:" >&2
  cat "$workdir/feedback.json" >&2
  exit 1
}
echo "feedback persisted: $(jq -c . "$workdir/feedback.json")"

start_daemon
curl -fsS "$base/admin" | grep -q 'Dialogue sessions' || {
  echo "admin page lacks the session section" >&2
  exit 1
}
stop_daemon

echo "session smoke OK"
