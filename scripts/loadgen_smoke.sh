#!/usr/bin/env bash
# loadgen_smoke.sh boots a throwaway nl2cmd daemon, drives a short
# repeated-question workload through cmd/loadgen, and asserts the
# serving layer held up: every request served (no errors), nonzero
# throughput, and a warm plan cache (>0% hit rate — on a repeated
# workload most requests after the first pass must be hits). Requires
# jq.
set -euo pipefail

cd "$(dirname "$0")/.."
addr=127.0.0.1:8098
workdir=$(mktemp -d)
daemon=
cleanup() {
  [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/nl2cmd" ./cmd/nl2cmd
go build -o "$workdir/loadgen" ./cmd/loadgen

"$workdir/nl2cmd" -addr "$addr" &
daemon=$!

"$workdir/loadgen" -addr "http://$addr" \
  -sessions "${SESSIONS:-32}" -requests "${REQUESTS:-800}" \
  -out "$workdir/record.json"

throughput=$(jq .throughput_rps "$workdir/record.json")
hitrate=$(jq .cache_hit_rate "$workdir/record.json")
errors=$(jq .errors "$workdir/record.json")

[ "$errors" -eq 0 ] || { echo "loadgen saw $errors errors" >&2; exit 1; }
jq -e '.throughput_rps > 0' "$workdir/record.json" >/dev/null || {
  echo "throughput $throughput not > 0" >&2
  exit 1
}
jq -e '.cache_hit_rate > 0' "$workdir/record.json" >/dev/null || {
  echo "cache hit rate $hitrate not > 0 on a repeated workload" >&2
  exit 1
}

echo "loadgen smoke OK: ${throughput%%.*} req/s, hit rate $hitrate"

# Second pass: interleave store writes with the traffic. Every write
# batch publishes a new epoch, so the run must show epoch churn, no
# failed mutations, and still zero translation errors.
"$workdir/loadgen" -addr "http://$addr" \
  -sessions "${SESSIONS:-32}" -requests "${MUTATE_REQUESTS:-400}" \
  -mutate-rate "${MUTATE_RATE:-0.05}" \
  -out "$workdir/mutate.json"

jq -e '.errors == 0' "$workdir/mutate.json" >/dev/null || {
  echo "mutating run saw errors: $(jq .errors "$workdir/mutate.json")" >&2
  exit 1
}
jq -e '(.mutation_errors // 0) == 0' "$workdir/mutate.json" >/dev/null || {
  echo "store writes failed: $(jq .mutation_errors "$workdir/mutate.json")" >&2
  exit 1
}
jq -e '.mutations > 0 and .epoch_churn > 0' "$workdir/mutate.json" >/dev/null || {
  echo "no epoch churn recorded under -mutate-rate" >&2
  exit 1
}

echo "mutate smoke OK: $(jq .mutations "$workdir/mutate.json") writes, \
$(jq .epoch_churn "$workdir/mutate.json") epochs, \
hit rate $(jq .cache_hit_rate "$workdir/mutate.json")"
