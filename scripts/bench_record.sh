#!/usr/bin/env bash
# bench_record.sh produces the repo's in-repo perf record for today: it
# runs the P-series micro-benchmarks (go test -bench), a full
# cmd/loadgen run against a locally started daemon, and a cmd/crowdbench
# run over a million-member synthetic population, then merges all three
# into one well-formed BENCH_<date>.json (or the file named by $1).
# Requires jq.
set -euo pipefail

cd "$(dirname "$0")/.."
out=${1:-BENCH_$(date +%F).json}
addr=127.0.0.1:8097
workdir=$(mktemp -d)
daemon=
cleanup() {
  [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

benchcmd="go test -run '^$' -bench 'BenchmarkP8_JoinPlan|BenchmarkP9_ScaleLookup|BenchmarkP10_GroupBy|BenchmarkP11_CrowdScale|BenchmarkP12_SnapshotRead' -benchmem ."
echo "== micro-benchmarks: $benchcmd"
go test -run '^$' -bench 'BenchmarkP8_JoinPlan|BenchmarkP9_ScaleLookup|BenchmarkP10_GroupBy|BenchmarkP11_CrowdScale|BenchmarkP12_SnapshotRead' \
  -benchmem . | tee "$workdir/bench.txt"

# "BenchmarkP8_JoinPlan/triples=10000-8   123  165018 ns/op  42192 B/op  291 allocs/op"
# → {"name": ..., "ns_per_op": ..., "bytes_per_op": ..., "allocs_per_op": ...}
awk '/^Benchmark/ {
  name = $1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
  printf "{\"name\": \"%s\", \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}\n",
    name, $3, $5, $7
}' "$workdir/bench.txt" | jq -s . >"$workdir/benchmarks.json"

echo "== loadgen against a live daemon"
go build -o "$workdir/nl2cmd" ./cmd/nl2cmd
go build -o "$workdir/loadgen" ./cmd/loadgen
"$workdir/nl2cmd" -addr "$addr" &
daemon=$!
"$workdir/loadgen" -addr "http://$addr" \
  -sessions "${SESSIONS:-200}" -requests "${REQUESTS:-5000}" \
  -out "$workdir/serving.json"
kill "$daemon" && wait "$daemon" 2>/dev/null || true
daemon=

echo "== crowdbench over a million-member population"
go build -o "$workdir/crowdbench" ./cmd/crowdbench
"$workdir/crowdbench" -members "${CROWD_MEMBERS:-1000000}" -out "$workdir/crowd.json"

jq -n \
  --arg date "$(date +%F)" \
  --arg go "$(go version | sed 's/^go version //')" \
  --arg cpu "$(grep -m1 'model name' /proc/cpuinfo | sed 's/.*: //' || echo unknown)" \
  --arg cmd "$benchcmd" \
  --arg note "${NOTE:-}" \
  --slurpfile benchmarks "$workdir/benchmarks.json" \
  --slurpfile serving "$workdir/serving.json" \
  --slurpfile crowd "$workdir/crowd.json" \
  '{date: $date, go: $go, cpu: $cpu, command: $cmd, note: $note,
    benchmarks: $benchmarks[0], serving: $serving[0], crowd: $crowd[0]}' >"$out"

echo "record written to $out"
jq '{date, serving: {throughput_rps: .serving.throughput_rps,
     latency_ms: .serving.latency_ms, cache_hit_rate: .serving.cache_hit_rate,
     cached_speedup: .serving.cached_speedup},
     crowd: {members: .crowd.members, savings_pct: .crowd.sequential_savings_pct,
     speedup_x: .crowd.sequential_speedup_x, all_modes_agree: .crowd.all_modes_agree}}' "$out"
