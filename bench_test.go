package nl2cm

// The benchmark harness: one bench per reproduced paper artifact (E1-E11,
// ablations A1-A2) plus engineering benches (P1-P5). Run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the correspondence between benches and the
// paper's figures and claims.

import (
	"context"
	"fmt"
	"testing"

	"nl2cm/internal/core"
	"nl2cm/internal/corpus"
	"nl2cm/internal/crowd"
	"nl2cm/internal/eval"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
	"nl2cm/internal/verify"
)

const runningExample = "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?"

// benchTranslator builds the standard demo pipeline once per bench.
func benchTranslator(b *testing.B) (*ontology.Ontology, *core.Translator) {
	b.Helper()
	onto := ontology.NewDemoOntology()
	return onto, core.New(onto)
}

// BenchmarkE1_Figure1RunningExample translates the paper's running
// example into the Figure 1 query.
func BenchmarkE1_Figure1RunningExample(b *testing.B) {
	_, tr := benchTranslator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Translate(context.Background(), runningExample, core.Options{})
		if err != nil || len(res.Query.Satisfying) != 2 {
			b.Fatalf("bad translation: %v", err)
		}
	}
}

// BenchmarkE2_Figure2PipelineTrace runs the pipeline with the admin-mode
// trace (Figure 2's data flow) enabled.
func BenchmarkE2_Figure2PipelineTrace(b *testing.B) {
	_, tr := benchTranslator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Translate(context.Background(), runningExample, core.Options{Trace: true})
		if err != nil || len(res.Trace) < 5 {
			b.Fatalf("bad trace: %v", err)
		}
	}
}

// BenchmarkE3_Figure3Verification checks the verification gate over the
// whole corpus (Figure 3's entry step).
func BenchmarkE3_Figure3Verification(b *testing.B) {
	qs := corpus.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			v := verify.Check(q.Text)
			if v.Supported != q.Supported {
				b.Fatalf("verification flipped for %s", q.ID)
			}
		}
	}
}

// BenchmarkE4_Figure4IXVerification runs the IX verification dialogue
// with a scripted user.
func BenchmarkE4_Figure4IXVerification(b *testing.B) {
	_, tr := benchTranslator(b)
	policy := interact.Policy{Ask: map[interact.Point]bool{interact.PointIXVerification: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.Options{
			Interactor: &interact.Scripted{IXAnswers: [][]bool{{true, true}}},
			Policy:     policy,
		}
		if _, err := tr.Translate(context.Background(), runningExample, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_Figure5LimitThreshold runs the significance dialogue.
func BenchmarkE5_Figure5LimitThreshold(b *testing.B) {
	_, tr := benchTranslator(b)
	policy := interact.Policy{Ask: map[interact.Point]bool{interact.PointSignificance: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.Options{
			Interactor: &interact.Scripted{TopKAnswers: []int{5}, ThresholdAnswers: []float64{0.1}},
			Policy:     policy,
		}
		res, err := tr.Translate(context.Background(), runningExample, opt)
		if err != nil || res.Query.Satisfying[0].TopK.K != 5 {
			b.Fatal("dialogue not applied")
		}
	}
}

// BenchmarkE6_Figure6FinalQuery measures the final-query display and the
// manual-edit round trip (print -> parse).
func BenchmarkE6_Figure6FinalQuery(b *testing.B) {
	_, tr := benchTranslator(b)
	res, err := tr.Translate(context.Background(), runningExample, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := res.Query.String()
		if _, err := oassisql.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_TranslationQuality scores IX detection, verification and
// end-to-end translation over the gold corpus (the §4.1 claim).
func BenchmarkE7_TranslationQuality(b *testing.B) {
	qs := corpus.All()
	onto := ontology.NewDemoOntology()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eval.ScoreIXDetection(ix.NewDetector(), qs)
		if err != nil || s.F1() < 0.85 {
			b.Fatalf("quality regressed: %v %v", s, err)
		}
		tr := core.New(onto)
		if r := eval.SuccessRate(eval.TranslateAll(tr, qs)); r < 0.95 {
			b.Fatalf("translation success regressed: %v", r)
		}
	}
}

// BenchmarkE8_ForumQuestions translates the full forum corpus (demo
// stage i).
func BenchmarkE8_ForumQuestions(b *testing.B) {
	onto := ontology.NewDemoOntology()
	qs := corpus.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := core.New(onto)
		out := eval.TranslateAll(tr, qs)
		if len(out) != len(qs) {
			b.Fatal("missing outcomes")
		}
	}
}

// BenchmarkE9_EndToEndExecution translates the running example and runs
// the query on the ontology and the simulated crowd (demo stage ii).
func BenchmarkE9_EndToEndExecution(b *testing.B) {
	onto, tr := benchTranslator(b)
	c := crowd.NewCrowd(100, 7)
	c.Truth = crowd.DemoTruth()
	eng := crowd.NewEngine(onto, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Translate(context.Background(), runningExample, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		out, err := eng.Execute(context.Background(), res.Query)
		if err != nil || len(out.Bindings) == 0 {
			b.Fatalf("execution failed: %v", err)
		}
	}
}

// BenchmarkE10_UnsupportedQuestions verifies the rejected-question path
// with tips (demo stage iii).
func BenchmarkE10_UnsupportedQuestions(b *testing.B) {
	qs := corpus.Unsupported()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			v := verify.Check(q.Text)
			if v.Supported || len(v.Tips) == 0 {
				b.Fatalf("%s not rejected with tips", q.ID)
			}
		}
	}
}

// BenchmarkE11_IXPatternMatch matches the paper's §2.3 example pattern
// against the running example's dependency graph.
func BenchmarkE11_IXPatternMatch(b *testing.B) {
	ps, err := ix.ParsePatterns(`PATTERN p TYPE participant ANCHOR $x
{$x subject $y
filter(POS($x) = "verb" && $y in V_participant)}`)
	if err != nil {
		b.Fatal(err)
	}
	d := ix.NewDetector()
	d.Patterns = ps
	g, err := nlp.Parse(runningExample)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ixs, err := d.Detect(context.Background(), g)
		if err != nil || len(ixs) != 1 {
			b.Fatalf("pattern match failed: %v", err)
		}
	}
}

// BenchmarkA1_NaiveBaseline scores the naive KB-mismatch baseline the
// introduction argues against.
func BenchmarkA1_NaiveBaseline(b *testing.B) {
	onto := ontology.NewDemoOntology()
	qs := corpus.All()
	naive := &eval.NaiveDetector{Onto: onto}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ScoreNaive(naive, qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2_PatternTypeAblation measures the leave-one-type-out
// detector variants.
func BenchmarkA2_PatternTypeAblation(b *testing.B) {
	qs := corpus.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.PatternTypeAblation(qs)
		if err != nil || len(rows) != 4 {
			b.Fatal(err)
		}
	}
}

// ---- engineering benches ----

// BenchmarkP1_NLParser measures tokenize+tag+dependency parse.
func BenchmarkP1_NLParser(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nlp.Parse(runningExample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP2_IXDetector measures pattern matching alone.
func BenchmarkP2_IXDetector(b *testing.B) {
	g, err := nlp.Parse(runningExample)
	if err != nil {
		b.Fatal(err)
	}
	d := ix.NewDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Detect(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP3_CrowdEngine measures query execution alone.
func BenchmarkP3_CrowdEngine(b *testing.B) {
	onto, tr := benchTranslator(b)
	res, err := tr.Translate(context.Background(), runningExample, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c := crowd.NewCrowd(100, 7)
	c.Truth = crowd.DemoTruth()
	eng := crowd.NewEngine(onto, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(context.Background(), res.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP4_SPARQLStore measures BGP matching over growing stores.
func BenchmarkP4_SPARQLStore(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("triples=%d", size), func(b *testing.B) {
			s := rdf.NewStore()
			for i := 0; i < size; i++ {
				s.AddTriple(
					rdf.NewIRI(fmt.Sprintf("e%d", i)),
					rdf.NewIRI(fmt.Sprintf("p%d", i%7)),
					rdf.NewIRI(fmt.Sprintf("e%d", (i*13)%size)),
				)
			}
			q, err := sparql.Parse(`SELECT $x $y WHERE { $x p0 $y . $y p1 $z }`)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.Eval(q, s, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP5_CrowdScaling measures support aggregation as the crowd
// grows.
func BenchmarkP5_CrowdScaling(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("members=%d", size), func(b *testing.B) {
			c := crowd.NewCrowd(size, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Support("pattern key", 0)
			}
		})
	}
}

// BenchmarkA3_FeedbackLearning measures the disambiguation learning
// curve (§4.1's ranking-improvement claim).
func BenchmarkA3_FeedbackLearning(b *testing.B) {
	onto := ontology.NewDemoOntology()
	intended := ontology.E("Buffalo,_IL")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve, err := eval.FeedbackLearningCurve(onto, "Where do you visit in Buffalo?", "Buffalo", intended, 3)
		if err != nil || !curve[len(curve)-1].AutoCorrect {
			b.Fatalf("learning failed: %v", err)
		}
	}
}

// BenchmarkP6_SpamRobustness measures support aggregation under spam
// workers, with and without trimmed-mean aggregation.
func BenchmarkP6_SpamRobustness(b *testing.B) {
	for _, cfg := range []struct {
		name string
		spam float64
		trim float64
	}{
		{"clean", 0, 0},
		{"spam30", 0.3, 0},
		{"spam30-trimmed", 0.3, 0.2},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := crowd.NewCrowd(400, 9)
			c.Truth = map[string]float64{"k": 0.9}
			c.SpamFraction = cfg.spam
			c.TrimFraction = cfg.trim
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Support("k", 0)
			}
		})
	}
}

// BenchmarkTranslateParallel measures throughput of one shared
// Translator under concurrent load (the daemon's serving model after
// the global lock was dropped), including disambiguation feedback
// writes so the Feedback lock is on the hot path.
func BenchmarkTranslateParallel(b *testing.B) {
	_, tr := benchTranslator(b)
	opt := core.Options{
		Interactor: interact.Auto{},
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointDisambiguation: true}},
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := tr.Translate(context.Background(), runningExample, opt)
			if err != nil || len(res.Query.Satisfying) != 2 {
				b.Fatalf("bad translation: %v", err)
			}
		}
	})
}

// BenchmarkE9_EndToEndExecutionParallel is E9 under concurrent load: one
// shared engine serving translate-and-execute rounds from all procs, the
// daemon's serving model. The shared support cache turns repeat crowd
// questions into lookups.
func BenchmarkE9_EndToEndExecutionParallel(b *testing.B) {
	onto, tr := benchTranslator(b)
	c := crowd.NewCrowd(100, 7)
	c.Truth = crowd.DemoTruth()
	eng := crowd.NewEngine(onto, c)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := tr.Translate(context.Background(), runningExample, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			out, err := eng.Execute(context.Background(), res.Query)
			if err != nil || len(out.Bindings) == 0 {
				b.Fatalf("execution failed: %v", err)
			}
		}
	})
}

// BenchmarkP7_CrowdEngineWorkers compares sequential and pooled crowd
// task evaluation on a support-heavy workload: an open-variable query
// fanning out over the ontology's places, each task polling a large
// crowd. The cache is reset every iteration so each measures cold
// executions.
func BenchmarkP7_CrowdEngineWorkers(b *testing.B) {
	thr := 0.3
	q := &oassisql.Query{
		Select: oassisql.SelectClause{All: true},
		Satisfying: []oassisql.Subclause{{
			Pattern: oassisql.Pattern{Triples: []rdf.Triple{
				rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("visit"), rdf.NewVar("x")),
			}},
			Threshold: &thr,
		}},
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=all", 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			onto := ontology.NewDemoOntology()
			c := crowd.NewCrowd(4000, 7)
			c.Truth = crowd.DemoTruth()
			eng := crowd.NewEngine(onto, c)
			eng.Workers = cfg.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ResetCache()
				out, err := eng.Execute(context.Background(), q)
				if err != nil || out.TasksIssued == 0 {
					b.Fatalf("execution failed: %v (tasks=%d)", err, out.TasksIssued)
				}
			}
		})
	}
}
