// Package nl2cm is the public API of the NL2CM reproduction: a system
// that translates natural-language questions mixing general and
// individual information needs into OASSIS-QL crowd-mining queries
// (Amsterdamer, Kukliansky and Milo, "NL2CM: A Natural Language Interface
// to Crowd Mining", SIGMOD 2015).
//
// The typical flow is:
//
//	onto := nl2cm.DemoOntology()
//	tr := nl2cm.NewTranslator(onto)
//	res, err := tr.Translate(ctx, "What are the most interesting places near "+
//	    "Forest Hotel, Buffalo, we should visit in the fall?", nl2cm.Options{})
//	fmt.Println(res.Query) // the OASSIS-QL query of the paper's Figure 1
//
//	eng := nl2cm.NewDemoEngine(onto)
//	out, err := eng.Execute(ctx, res.Query) // ontology + simulated crowd
//
// The exported names are aliases of the implementation packages so the
// full documented behaviour lives with the types.
package nl2cm

import (
	"io"

	"nl2cm/internal/compose"
	"nl2cm/internal/core"
	"nl2cm/internal/corpus"
	"nl2cm/internal/crowd"
	"nl2cm/internal/crowdscale"
	"nl2cm/internal/emit"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/qcache"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
	"nl2cm/internal/session"
	"nl2cm/internal/verify"
)

// ---- Translation pipeline ----

// Translator is the NL2CM pipeline (verification, NL parsing, IX
// detection, general query generation, individual triple creation, query
// composition). Reuse one instance so disambiguation feedback
// accumulates; it is safe for concurrent use — see the core package
// comment for the sharing model.
type Translator = core.Translator

// Options configure one translation (interactor, policy, admin trace,
// observer).
type Options = core.Options

// Result is a translation outcome: verdict, dependency graph, IXs,
// general parts, individual parts, the final query, the admin trace and
// the dialogue transcript.
type Result = core.Result

// Stage is one admin-trace entry, including the module's wall-clock
// duration.
type Stage = core.Stage

// StageError attributes a translation failure to the pipeline module
// that raised it; it wraps the cause for errors.Is/As.
type StageError = core.StageError

// Observer receives per-stage start/finish callbacks during a
// translation.
type Observer = core.Observer

// ObserverFunc adapts an end-of-stage callback to Observer.
type ObserverFunc = core.ObserverFunc

// Pipeline stage names, as used in Stage.Module, StageError.Stage and
// Observer callbacks.
const (
	StageVerification = core.StageVerification
	StageParser       = core.StageParser
	StageIXDetector   = core.StageIXDetector
	StageIXVerify     = core.StageIXVerify
	StageGenerator    = core.StageGenerator
	StageIndividual   = core.StageIndividual
	StageComposer     = core.StageComposer
	// StageEmitter renders the composed plan into the extra backend
	// dialects requested via Options.Backends.
	StageEmitter = core.StageEmitter
	// StageCrowd attributes execution-side (crowd.Engine) failures and
	// observer callbacks.
	StageCrowd = core.StageCrowd
	// StagePlanCache is the shape-keyed plan cache probe/rebind that can
	// serve a translation without running the pipeline (Translator.Cache).
	StagePlanCache = core.StagePlanCache
	// StageQueue is the serving daemon's admission-control wait, recorded
	// by cmd/nl2cmd ahead of the pipeline stages.
	StageQueue = core.StageQueue
)

// NewTranslator builds a translator over an ontology with the default IX
// patterns, vocabularies and composition defaults.
func NewTranslator(onto *Ontology) *Translator { return core.New(onto) }

// ---- Plan cache ----

// PlanCache is the shape-keyed translation cache: install one on
// Translator.Cache and repeated (or same-shape) non-interactive
// questions are served from cached plans, re-binding entity slots
// instead of re-running the pipeline. It is safe for concurrent use and
// deduplicates concurrent misses of one shape (single-flight).
type PlanCache = qcache.Cache

// PlanCacheStats is a point-in-time snapshot of a PlanCache's counters
// (hits, rebinds, misses, waits, evictions, entries).
type PlanCacheStats = qcache.Stats

// NewPlanCache builds a plan cache holding up to capacity shapes
// (LRU-evicted beyond); capacity <= 0 uses qcache.DefaultCapacity.
func NewPlanCache(capacity int) *PlanCache { return qcache.New(capacity) }

// ---- Query language ----

// Query is a parsed or composed OASSIS-QL query.
type Query = oassisql.Query

// Subclause is one SATISFYING data pattern with its significance
// criterion.
type Subclause = oassisql.Subclause

// ParseQuery parses OASSIS-QL text.
func ParseQuery(input string) (*Query, error) { return oassisql.Parse(input) }

// ---- Backend emission ----

// Plan is the backend-neutral logical query IR a translation produces
// (Result.Plan): general triple patterns, filters and projection plus
// crowd-mining clauses, each pattern carrying its source provenance.
type Plan = emit.Plan

// Backend renders a Plan into one concrete query dialect.
type Backend = emit.Backend

// BackendCaps are a backend's capability flags (crowd clauses, joins,
// filters, variable predicates).
type BackendCaps = emit.Caps

// Rendering is a Plan rendered by one backend: the query text,
// per-clause provenance and capability-fallback notes.
type Rendering = emit.Rendering

// RenderedClause traces one emitted query fragment back to the logical
// pattern and question phrase it derives from.
type RenderedClause = emit.Clause

// CapabilityError reports a plan feature a backend cannot express.
type CapabilityError = emit.CapabilityError

// DefaultBackend is the backend used when none is named: the paper's
// OASSIS-QL dialect.
const DefaultBackend = emit.DefaultBackend

// Backends lists the registered backend names, DefaultBackend first.
func Backends() []string { return emit.Names() }

// LookupBackend returns the named backend (false when unknown).
func LookupBackend(name string) (Backend, bool) { return emit.Lookup(name) }

// EmitBackend renders a plan in the named backend's dialect.
func EmitBackend(name string, p *Plan) (*Rendering, error) { return emit.Emit(name, p) }

// ---- Ontologies ----

// Ontology is a general-knowledge base with label and relation indexes.
type Ontology = ontology.Ontology

// DemoOntology returns the merged LinkedGeoData+DBPedia substitute used
// by the demonstration.
func DemoOntology() *Ontology { return ontology.NewDemoOntology() }

// GeoOntology returns the LinkedGeoData substitute alone.
func GeoOntology() *Ontology { return ontology.NewGeoOntology() }

// EncyclopedicOntology returns the DBPedia substitute alone.
func EncyclopedicOntology() *Ontology { return ontology.NewEncyclopedicOntology() }

// ReadOntology loads an ontology from N-Triples data, rebuilding the
// label and class indexes (administrator knowledge-base workflow).
func ReadOntology(name string, r io.Reader) (*Ontology, error) {
	return ontology.ReadNTriples(name, r)
}

// ---- Knowledge store ----

// TripleStore is the epoch-snapshot sharded RDF store backing every
// Ontology: writes batch under a single writer and publish immutable
// snapshots; readers pin one snapshot and never observe a half-applied
// batch.
type TripleStore = rdf.ShardedStore

// StoreSnapshot is an immutable view of the triple store at one epoch.
// All read methods on a snapshot answer from the same published state
// no matter how many batches commit concurrently.
type StoreSnapshot = rdf.Snapshot

// StoreBatch is one atomic store mutation: deletes apply before
// inserts, and the whole batch is rejected if any insert is non-ground.
type StoreBatch = rdf.Batch

// StoreTriple is one (subject, predicate, object) fact.
type StoreTriple = rdf.Triple

// ParseTriples parses N-Triples text into triples suitable for a
// StoreBatch.
func ParseTriples(r io.Reader) ([]StoreTriple, error) { return rdf.ParseNTriples(r) }

// ---- Crowd execution ----

// Engine executes OASSIS-QL queries against an ontology and a simulated
// crowd. Execute takes a context (cancellation between subclauses and
// task batches), fans crowd tasks out over a bounded worker pool, and
// memoizes per-(fact key, sample size) supports in a concurrency-safe
// cache — see Engine.CacheStats and ExecResult's metric fields.
type Engine = crowd.Engine

// Crowd is a simulated population of web users.
type Crowd = crowd.Crowd

// ExecResult is a query execution outcome, including engine metrics
// (tasks issued, cache hits/misses, per-subclause wall-clock).
type ExecResult = crowd.Result

// SubclauseResult is one SATISFYING subclause's evaluation.
type SubclauseResult = crowd.SubclauseResult

// Task is one crowd task with its aggregated support.
type Task = crowd.Task

// NewCrowd builds a crowd of the given size and seed.
func NewCrowd(size int, seed int64) *Crowd { return crowd.NewCrowd(size, seed) }

// NewEngine builds an execution engine.
func NewEngine(onto *Ontology, c *Crowd) *Engine { return crowd.NewEngine(onto, c) }

// NewDemoEngine builds an engine with the demonstration crowd: 100
// members, seed 7, curated truth for the paper's example questions.
func NewDemoEngine(onto *Ontology) *Engine {
	c := crowd.NewCrowd(100, 7)
	c.Truth = crowd.DemoTruth()
	return crowd.NewEngine(onto, c)
}

// DemoTruth returns the curated latent truth behind the demonstration
// crowd (the paper's running-example answer distribution).
func DemoTruth() map[string]float64 { return crowd.DemoTruth() }

// ---- Crowd mining at scale ----

// ScaleExecutor is the streaming crowd-task pipeline: a bounded task
// queue with a worker pool, incremental support aggregation, and
// sequential-sampling early termination. Attach one to Engine.Scale to
// replace the synchronous fan-out; Close it when done.
type ScaleExecutor = crowdscale.Executor

// ScaleConfig tunes a ScaleExecutor (workers, queue depth, batch
// growth, stopping rule); the zero value uses documented defaults.
type ScaleConfig = crowdscale.Config

// ScaleRule selects the sequential-sampling stopping rule.
type ScaleRule = crowdscale.Rule

// The stopping rules: RuleConfidence (Hoeffding/Serfling interval,
// sublinear sample cost) and RuleExact (worst-case bounds, decisions
// provably identical to exhaustive evaluation).
const (
	RuleConfidence = crowdscale.RuleConfidence
	RuleExact      = crowdscale.RuleExact
)

// ScaleSource is a lazily-addressed crowd population: answers derive
// from (member index, fact key) on demand and are never stored.
type ScaleSource = crowdscale.Source

// ScaleStats snapshots a ScaleExecutor's monotonic counters (tasks,
// batches, member answers, early-termination savings, queue depth).
type ScaleStats = crowdscale.Stats

// ScaleMetrics is the per-execution counter delta attached to
// ExecResult.Scale when the engine runs with a ScaleExecutor.
type ScaleMetrics = crowd.ScaleMetrics

// EngineStats is the engine-lifetime counter snapshot (executions,
// tasks, support cache, optional scale section) served by /api/stats.
type EngineStats = crowd.EngineStats

// Population is a synthetic crowd of arbitrary size with skew, spammer
// and taste-segment controls; members are derived lazily from (Seed,
// member, key), so a million-member population occupies no memory.
type Population = crowdscale.Population

// NewScaleExecutor builds a streaming executor whose answers come from
// the crowd (its members, truth, noise and spammers). The crowd must
// not use TrimFraction — sequential bounds hold for plain means only.
func NewScaleExecutor(c *Crowd, cfg ScaleConfig) (*ScaleExecutor, error) {
	return crowd.NewScaleExecutor(c, cfg)
}

// NewScaleExecutorFrom builds a streaming executor over any lazy
// population source (e.g. a *Population).
func NewScaleExecutorFrom(src ScaleSource, cfg ScaleConfig) *ScaleExecutor {
	return crowdscale.New(src, cfg)
}

// ---- Interaction ----

// Interactor answers the system's dialogue questions.
type Interactor = interact.Interactor

// Policy selects active interaction points.
type Policy = interact.Policy

// AutoInteractor answers every dialogue with its default.
type AutoInteractor = interact.Auto

// ScriptedInteractor replays canned answers (tests, demo scripts).
type ScriptedInteractor = interact.Scripted

// ConsoleInteractor prompts on an io stream (CLI front end).
type ConsoleInteractor = interact.Console

// InteractionPoint identifies one of the four dialogue points.
type InteractionPoint = interact.Point

// The four interaction points, in pipeline order.
const (
	PointIXVerification = interact.PointIXVerification
	PointDisambiguation = interact.PointDisambiguation
	PointSignificance   = interact.PointSignificance
	PointProjection     = interact.PointProjection
)

// InteractivePolicy enables all four interaction points.
func InteractivePolicy() Policy { return interact.Interactive() }

// AutomaticPolicy disables all interaction (the §4.1 mode).
func AutomaticPolicy() Policy { return interact.Automatic() }

// ---- Dialogue sessions ----

// SessionManager owns stateful dialogue sessions: each translation runs
// in its own goroutine and parks at interaction points until a client
// answers (or a deadline substitutes the automatic default). See the
// session package for the lifecycle (capacity, TTL, eviction, metrics).
type SessionManager = session.Manager

// SessionConfig configures a SessionManager.
type SessionConfig = session.Config

// Session is one interactive translation.
type Session = session.Session

// SessionSnapshot is a point-in-time view of a session.
type SessionSnapshot = session.Snapshot

// SessionQuestion is a pending dialogue question, typed by its kind.
type SessionQuestion = session.Question

// SessionAnswer is a client's reply to a pending question.
type SessionAnswer = session.Answer

// SessionMetrics snapshots a manager's lifecycle and per-point dialogue
// counters.
type SessionMetrics = session.Metrics

// NewSessionManager builds a session manager over the config.
func NewSessionManager(cfg SessionConfig) *SessionManager { return session.NewManager(cfg) }

// ---- IX detection (the paper's core contribution) ----

// IXDetector finds and completes Individual eXpressions in dependency
// graphs using declarative patterns and vocabularies.
type IXDetector = ix.Detector

// IXPattern is one declarative detection pattern.
type IXPattern = ix.Pattern

// IX is a completed individual expression.
type IX = ix.IX

// NewIXDetector returns the default detector.
func NewIXDetector() *IXDetector { return ix.NewDetector() }

// ParseIXPatterns parses administrator pattern files.
func ParseIXPatterns(input string) ([]*IXPattern, error) { return ix.ParsePatterns(input) }

// ---- NL parsing ----

// DepGraph is a typed dependency graph.
type DepGraph = nlp.DepGraph

// ParseSentence tokenizes, tags and dependency-parses one sentence.
func ParseSentence(s string) (*DepGraph, error) { return nlp.Parse(s) }

// ---- Verification ----

// Verdict is the question-verification outcome with rephrasing tips.
type Verdict = verify.Verdict

// CheckQuestion verifies a question without translating it.
func CheckQuestion(q string) Verdict { return verify.Check(q) }

// ---- Corpus ----

// Question is one corpus entry with gold annotations.
type Question = corpus.Question

// Corpus returns the embedded forum-style question corpus.
func Corpus() []Question { return corpus.All() }

// ---- Tuning ----

// ComposerDefaults exposes the significance defaults (LIMIT 5,
// THRESHOLD 0.1 as in the paper's Figure 1).
type ComposerDefaults = compose.Defaults

// GeneratorFeedback is the learned disambiguation-ranking store.
type GeneratorFeedback = qgen.Feedback

// LoadFeedback reads a persisted feedback store; a missing file yields
// an empty store.
func LoadFeedback(path string) (*GeneratorFeedback, error) { return qgen.LoadFeedback(path) }
