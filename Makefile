GO ?= go

.PHONY: all check vet staticcheck build test race session-stress session-smoke crowd-stress store-stress loadgen-smoke bench bench-smoke bench-record fuzz-smoke emit-golden emit-golden-update agg-golden fmt

all: check

# check is the CI gate: vet + staticcheck, build everything, run the
# tests with the race detector (the concurrency stress tests depend on
# it), verify the per-backend golden emissions and the analytic path,
# hammer the dialogue-session subsystem a few extra rounds, then smoke
# the serving layer with a short load-generator run.
check: vet staticcheck build race emit-golden agg-golden session-stress crowd-stress store-stress loadgen-smoke

vet:
	$(GO) vet ./...

# staticcheck gates CI (the workflow installs it); locally it is skipped
# with a notice when the binary is absent, so offline machines can still
# run `make check`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# session-stress repeats the dialogue-session concurrency and
# goroutine-leak tests under the race detector: interleaved answers,
# expiry, eviction and 100 abandoned sessions.
session-stress:
	$(GO) test -race -count=3 -run 'TestSessionStress|TestAbandonedSessionsLeakNoGoroutines|TestConcurrentAnswersOneSession' ./internal/session/

# crowd-stress exercises the crowd-scale subsystem under the race
# detector: the streaming queue and sequential sampler (including the
# cancellation/goroutine-leak and backpressure tests), the engine
# wiring, and the corpus-wide differential against the exhaustive
# engine.
crowd-stress:
	$(GO) test -race ./internal/crowdscale/ ./internal/crowd/
	$(GO) test -race -run TestCrowdScaleDifferentialCorpus .

# store-stress hammers the epoch-snapshot store under the race
# detector: concurrent writers publishing epochs while readers hold and
# render old snapshots, the randomized sharded-vs-flat differential,
# and the cache-invalidation epoch tests on top of it.
store-stress:
	$(GO) test -race -count=3 -run 'TestShardedSnapshotStableUnderConcurrentPublish|TestShardedOldSnapshotSurvivesDeleteAll|TestShardedDifferentialFlat' ./internal/rdf/
	$(GO) test -race -run 'TestDataEpochInvalidatesCachedPlans|TestDeletedEntityNeverResurrectedFromCache' ./internal/core/

# session-smoke curls a live daemon through one scripted dialogue
# (requires curl and jq).
session-smoke:
	./scripts/session_smoke.sh

# loadgen-smoke drives a short repeated-question workload through
# cmd/loadgen against a locally started daemon and asserts nonzero
# throughput, zero errors and a warm plan cache (requires jq).
loadgen-smoke:
	./scripts/loadgen_smoke.sh

# bench-record runs the P-series benches plus a full loadgen run and
# writes today's BENCH_<date>.json perf record (requires jq).
bench-record:
	./scripts/bench_record.sh

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs every benchmark once so bench code cannot silently
# rot; it measures nothing.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .

# emit-golden checks every supported corpus question against the
# per-backend golden emission files (testdata/golden_*.txt) and runs the
# SQL-vs-RDF differential; emit-golden-update regenerates the files
# after an intentional emitter change.
emit-golden:
	$(GO) test -run 'TestBackendGolden|TestGoldenQueriesByteIdentical|TestCorpusSQLDifferential' .

emit-golden-update:
	$(GO) test -run TestBackendGolden -update .

# agg-golden pins the aggregate/analytic path: the SPARQL parser and
# evaluator unit tests (GROUP BY, COUNT/SUM/AVG/MIN/MAX, typed HAVING,
# numeric ORDER BY) plus the public end-to-end superlative question.
agg-golden:
	$(GO) test -run 'TestParseAggregate|TestEvalOrderNumeric|TestEvalGroupBy|TestEvalSuperlative|TestEvalHaving|TestEvalAggregate|TestAggregateValidate|TestProgrammaticHaving' ./internal/sparql/
	$(GO) test -run 'TestPublicAggregateEndToEnd|TestCorpusSQLDifferential' .

# fuzz-smoke runs each native fuzz target briefly: enough to catch
# panics and invariant regressions without slowing the gate. Go allows
# one -fuzz pattern per package invocation, hence two runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/nlp/
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/sparql/

fmt:
	gofmt -l -w .
