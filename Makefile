GO ?= go

.PHONY: all check vet build test race bench bench-smoke fmt

all: check

# check is the CI gate: vet, build everything, run the tests with the
# race detector (the concurrency stress tests depend on it).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs every benchmark once so bench code cannot silently
# rot; it measures nothing.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .

fmt:
	gofmt -l -w .
