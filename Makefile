GO ?= go

.PHONY: all check vet build test race bench fmt

all: check

# check is the CI gate: vet, build everything, run the tests with the
# race detector (the concurrency stress tests depend on it).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
