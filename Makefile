GO ?= go

.PHONY: all check vet build test race session-stress session-smoke bench bench-smoke fmt

all: check

# check is the CI gate: vet, build everything, run the tests with the
# race detector (the concurrency stress tests depend on it), then hammer
# the dialogue-session subsystem a few extra rounds.
check: vet build race session-stress

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# session-stress repeats the dialogue-session concurrency and
# goroutine-leak tests under the race detector: interleaved answers,
# expiry, eviction and 100 abandoned sessions.
session-stress:
	$(GO) test -race -count=3 -run 'TestSessionStress|TestAbandonedSessionsLeakNoGoroutines|TestConcurrentAnswersOneSession' ./internal/session/

# session-smoke curls a live daemon through one scripted dialogue
# (requires curl and jq).
session-smoke:
	./scripts/session_smoke.sh

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs every benchmark once so bench code cannot silently
# rot; it measures nothing.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .

fmt:
	gofmt -l -w .
