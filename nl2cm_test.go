package nl2cm

// Facade tests: the public API reproduces the paper's headline artifacts
// end to end.

import (
	"context"
	"strings"
	"testing"
)

// figure1 is the paper's Figure 1 query text.
const figure1 = `SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`

func TestFigure1Exact(t *testing.T) {
	tr := NewTranslator(DemoOntology())
	res, err := tr.Translate(context.Background(), runningExample, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.String(); got != figure1 {
		t.Errorf("public API does not reproduce Figure 1:\n%s", got)
	}
}

func TestFigure2TraceStages(t *testing.T) {
	tr := NewTranslator(DemoOntology())
	res, err := tr.Translate(context.Background(), runningExample, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 5 {
		t.Errorf("trace has %d stages", len(res.Trace))
	}
}

func TestPublicEndToEnd(t *testing.T) {
	onto := DemoOntology()
	tr := NewTranslator(onto)
	eng := NewDemoEngine(onto)
	res, err := tr.Translate(context.Background(), runningExample, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Execute(context.Background(), res.Query)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, b := range out.Bindings {
		found[b["x"].Local()] = true
	}
	if !found["Delaware_Park"] || !found["Buffalo_Zoo"] {
		t.Errorf("paper's expected answers missing: %v", found)
	}
}

// TestPublicAggregateEndToEnd drives an analytic question through the
// whole stack: NL → grouped-count plan → crowd engine → one winning
// group. Buffalo holds 8 attractions in the demo ontology, ahead of Las
// Vegas (4 hotels) — the superlative must surface it with its count.
func TestPublicAggregateEndToEnd(t *testing.T) {
	onto := DemoOntology()
	tr := NewTranslator(onto)
	eng := NewDemoEngine(onto)
	for _, c := range []struct {
		text, entity, count string
	}{
		{"Which city has the most attractions?", "Buffalo,_NY", "8"},
		{"How many parks are in Buffalo?", "", "2"},
	} {
		res, err := tr.Translate(context.Background(), c.text, Options{})
		if err != nil {
			t.Fatalf("%s: Translate: %v", c.text, err)
		}
		if res.Plan == nil || !res.Plan.Aggregated() {
			t.Fatalf("%s: plan is not aggregated", c.text)
		}
		out, err := eng.Execute(context.Background(), res.Query)
		if err != nil {
			t.Fatalf("%s: Execute: %v", c.text, err)
		}
		if len(out.Bindings) != 1 {
			t.Fatalf("%s: %d bindings, want 1: %v", c.text, len(out.Bindings), out.Bindings)
		}
		b := out.Bindings[0]
		if got := b["count"].Value(); got != c.count {
			t.Errorf("%s: count = %q, want %q", c.text, got, c.count)
		}
		if c.entity != "" {
			if got := b["x"].Local(); got != c.entity {
				t.Errorf("%s: winner = %q, want %q", c.text, got, c.entity)
			}
		}
	}
}

func TestPublicQueryParsing(t *testing.T) {
	q, err := ParseQuery(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != figure1 {
		t.Error("parse/print round trip failed via public API")
	}
}

func TestPublicVerification(t *testing.T) {
	if v := CheckQuestion("How should I store coffee?"); v.Supported {
		t.Error("descriptive question accepted")
	}
	if v := CheckQuestion(runningExample); !v.Supported {
		t.Error("running example rejected")
	}
}

func TestPublicCorpusAccess(t *testing.T) {
	qs := Corpus()
	if len(qs) < 40 {
		t.Errorf("corpus = %d questions", len(qs))
	}
}

func TestPublicIXDetector(t *testing.T) {
	g, err := ParseSentence(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	d := NewIXDetector()
	ixs, err := d.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ixs) != 2 {
		t.Errorf("detected %d IXs, want 2", len(ixs))
	}
	// Administrator extension point: parse a custom pattern.
	ps, err := ParseIXPatterns(`PATTERN p TYPE syntactic ANCHOR $v
{$v auxiliary $m
FILTER(LEMMA($m) IN V_modal)}`)
	if err != nil || len(ps) != 1 {
		t.Fatalf("ParseIXPatterns: %v", err)
	}
}

func TestPublicScriptedInteraction(t *testing.T) {
	tr := NewTranslator(DemoOntology())
	opt := Options{
		Interactor: &ScriptedInteractor{
			TopKAnswers:      []int{2},
			ThresholdAnswers: []float64{0.4},
		},
		Policy: InteractivePolicy(),
	}
	res, err := tr.Translate(context.Background(), runningExample, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Query.String(), "LIMIT 2") {
		t.Errorf("interaction not honored:\n%s", res.Query)
	}
}
