package nl2cm

// Corpus-wide differential test for the crowd-scale subsystem: over
// every supported question in the 81-question corpus, the streaming
// sequential-sampling path (both stopping rules) must produce the same
// per-subclause significant fact-sets and the same final bindings as
// the exhaustive engine — the ISSUE 9 acceptance criterion.

import (
	"context"
	"testing"

	"nl2cm/internal/sparql"
)

const diffCrowdSize = 1200

// diffEngines builds the exhaustive oracle engine and two scale engines
// (RuleExact, RuleConfidence) over identical crowds: same size, seed
// and truth, so member answers agree member-for-member.
func diffEngines(t *testing.T) (oracle, exact, conf *Engine) {
	t.Helper()
	onto := DemoOntology()
	mk := func() *Engine {
		c := NewCrowd(diffCrowdSize, 7)
		c.Truth = DemoTruth()
		return NewEngine(onto, c)
	}
	oracle = mk()
	exact = mk()
	conf = mk()
	for eng, rule := range map[*Engine]ScaleRule{exact: RuleExact, conf: RuleConfidence} {
		x, err := NewScaleExecutor(eng.Crowd, ScaleConfig{Rule: rule})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(x.Close)
		eng.Scale = x
	}
	return oracle, exact, conf
}

func sigKeys(r *ExecResult) []map[string]bool {
	out := make([]map[string]bool, len(r.Subclauses))
	for i, sc := range r.Subclauses {
		out[i] = map[string]bool{}
		for _, task := range sc.Significant() {
			out[i][task.Key] = true
		}
	}
	return out
}

func bindingSet(r *ExecResult) map[string]int {
	out := map[string]int{}
	for _, b := range r.Bindings {
		out[sparql.BindingKey(b)]++
	}
	return out
}

func TestCrowdScaleDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide differential test skipped in -short mode")
	}
	oracle, exact, conf := diffEngines(t)
	tr := NewTranslator(DemoOntology())
	ctx := context.Background()
	executed := 0
	for _, q := range Corpus() {
		res, err := tr.Translate(ctx, q.Text, Options{})
		if err != nil || !res.Verdict.Supported || res.Query == nil {
			continue
		}
		want, err := oracle.Execute(ctx, res.Query)
		if err != nil {
			t.Fatalf("%s: exhaustive execution: %v", q.ID, err)
		}
		executed++
		for name, eng := range map[string]*Engine{"exact": exact, "confidence": conf} {
			got, err := eng.Execute(ctx, res.Query)
			if err != nil {
				t.Fatalf("%s [%s]: scale execution: %v", q.ID, name, err)
			}
			ws, gs := sigKeys(want), sigKeys(got)
			if len(ws) != len(gs) {
				t.Fatalf("%s [%s]: subclause counts differ: %d vs %d", q.ID, name, len(ws), len(gs))
			}
			for i := range ws {
				for k := range ws[i] {
					if !gs[i][k] {
						t.Errorf("%s [%s] subclause %d: exhaustive keeps %q, scale drops it", q.ID, name, i, k)
					}
				}
				for k := range gs[i] {
					if !ws[i][k] {
						t.Errorf("%s [%s] subclause %d: scale keeps %q, exhaustive drops it", q.ID, name, i, k)
					}
				}
			}
			wb, gb := bindingSet(want), bindingSet(got)
			if len(wb) != len(gb) {
				t.Errorf("%s [%s]: %d bindings vs %d exhaustive", q.ID, name, len(gb), len(wb))
			}
			for k := range wb {
				if gb[k] != wb[k] {
					t.Errorf("%s [%s]: binding %q count %d vs %d", q.ID, name, k, gb[k], wb[k])
				}
			}
		}
	}
	if executed < 40 {
		t.Fatalf("differential test executed only %d corpus queries", executed)
	}

	// Sequential sampling must have done strictly less work than fixed
	// full sampling would (the sublinear-work criterion): every task a
	// fixed-sample engine runs costs the full effective population.
	for name, eng := range map[string]*Engine{"exact": exact, "confidence": conf} {
		st := eng.Stats()
		if st.Scale == nil {
			t.Fatalf("[%s] no scale stats", name)
		}
		fixed := st.Scale.TasksDecided * diffCrowdSize
		if st.Scale.MemberAnswers >= fixed {
			t.Errorf("[%s] sequential sampling saved nothing: %d answers for %d tasks (fixed cost %d)",
				name, st.Scale.MemberAnswers, st.Scale.TasksDecided, fixed)
		}
		t.Logf("[%s] corpus: %d tasks, %d/%d answers asked (%.1f%% of fixed), %d early, %d full",
			name, st.Scale.TasksDecided, st.Scale.MemberAnswers, fixed,
			100*float64(st.Scale.MemberAnswers)/float64(fixed),
			st.Scale.EarlyDecided, st.Scale.FullySampled)
	}
}
