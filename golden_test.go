package nl2cm

import (
	"context"
	"os"
	"strings"
	"testing"

	"nl2cm/internal/corpus"
	"nl2cm/internal/oassisql"
)

// loadGolden parses testdata/golden_queries.txt: "=== <id>" headers
// followed by the composed query captured before the provenance refactor.
func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_queries.txt")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	out := map[string]string{}
	var id string
	var lines []string
	flush := func() {
		if id != "" {
			out[id] = strings.Join(lines, "\n")
		}
	}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if rest, found := strings.CutPrefix(line, "=== "); found {
			flush()
			id = rest
			lines = nil
			continue
		}
		lines = append(lines, line)
	}
	flush()
	return out
}

// The provenance refactor must be purely additive: composed queries for
// the whole supported corpus stay byte-identical to the pre-refactor
// golden output.
func TestGoldenQueriesByteIdentical(t *testing.T) {
	golden := loadGolden(t)
	tr := NewTranslator(DemoOntology())
	ctx := context.Background()
	tested := 0
	for _, q := range corpus.Supported() {
		want, recorded := golden[q.ID]
		if !recorded {
			continue
		}
		tested++
		res, err := tr.Translate(ctx, q.Text, Options{})
		if err != nil {
			t.Errorf("%s: Translate: %v", q.ID, err)
			continue
		}
		if res.Query == nil {
			t.Errorf("%s: no query", q.ID)
			continue
		}
		if got := res.Query.String(); got != want {
			t.Errorf("%s: query differs from golden output\ngot:\n%s\nwant:\n%s", q.ID, got, want)
		}
	}
	if tested != len(golden) {
		t.Errorf("tested %d corpus questions, golden file has %d", tested, len(golden))
	}
	if tested == 0 {
		t.Fatal("no golden entries exercised")
	}
}

// Every triple of every emitted query must resolve to at least one
// source token span through Result.Provenance — corpus-wide.
func TestProvenanceCoversEveryTriple(t *testing.T) {
	tr := NewTranslator(DemoOntology())
	ctx := context.Background()
	for _, q := range corpus.Supported() {
		res, err := tr.Translate(ctx, q.Text, Options{})
		if err != nil {
			t.Errorf("%s: Translate: %v", q.ID, err)
			continue
		}
		if res.Query == nil {
			continue
		}
		var all []string
		for _, t3 := range res.Query.Where.Triples {
			all = append(all, oassisql.TripleString(t3))
		}
		for _, sc := range res.Query.Satisfying {
			for _, t3 := range sc.Pattern.Triples {
				all = append(all, oassisql.TripleString(t3))
			}
		}
		for _, key := range all {
			rec, seen := res.Provenance[key]
			if !seen {
				t.Errorf("%s: triple %q has no provenance record", q.ID, key)
				continue
			}
			if len(rec.Spans) == 0 || rec.Text == "" {
				t.Errorf("%s: triple %q resolves to no source span (tokens %v)", q.ID, key, rec.Tokens)
				continue
			}
			for _, part := range strings.Split(rec.Text, " ... ") {
				if !strings.Contains(q.Text, part) {
					t.Errorf("%s: provenance text %q is not quoted from the question", q.ID, rec.Text)
					break
				}
			}
		}
		// The annotated rendering must re-parse to an equivalent query.
		annotated := res.AnnotatedQuery()
		if len(res.Query.Satisfying) > 0 {
			re, err := ParseQuery(annotated)
			if err != nil {
				t.Errorf("%s: annotated query does not re-parse: %v\n%s", q.ID, err, annotated)
			} else if re.String() != res.Query.String() {
				t.Errorf("%s: annotated query re-parses to a different query\n%s", q.ID, annotated)
			}
		}
	}
}

// The running example's annotated query must quote its source phrases.
func TestAnnotatedQueryRunningExample(t *testing.T) {
	tr := NewTranslator(DemoOntology())
	res, err := tr.Translate(context.Background(),
		"What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	annotated := res.AnnotatedQuery()
	for _, want := range []string{"# from: ", "\"interesting places\"", "\"places ... visit\"", "\"in ... fall\""} {
		if !strings.Contains(annotated, want) {
			t.Errorf("annotated query missing %q:\n%s", want, annotated)
		}
	}
}
