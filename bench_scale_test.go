package nl2cm

// Ontology-scale benchmarks for the SPARQL/RDF data plane: multi-pattern
// join planning (P8), lookup + evaluation at 10k/100k triples (P9), and
// grouped aggregation over a full scan (P10). EXPERIMENTS.md records
// before/after numbers for the interned-store and planner rewrite.

import (
	"fmt"
	"testing"

	"nl2cm/internal/ontology"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// synthFor returns a synthetic ontology sized to approximately the given
// triple count (the generator emits ~4 triples per entity).
func synthFor(triples int) *ontology.Ontology {
	return ontology.NewSynthetic(triples / 4)
}

// BenchmarkP8_JoinPlan measures a three-pattern BGP join where the
// selective pattern (richIn appears on 1% of entities) is written last:
// a cardinality-driven planner starts from it, while the unbound-variable
// heuristic starts from the first, far larger pattern.
func BenchmarkP8_JoinPlan(b *testing.B) {
	for _, triples := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("triples=%d", triples), func(b *testing.B) {
			onto := synthFor(triples)
			q, err := sparql.Parse(fmt.Sprintf(`SELECT $x $y $z WHERE {
				$x <%snear> $y .
				$y <%sinstanceOf> <%sclass3> .
				$x <%srichIn> $z
			}`, ontology.NS, ontology.NS, ontology.NS, ontology.NS))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := sparql.Eval(q, onto.Store, nil)
				if err != nil || len(rows) == 0 {
					b.Fatalf("join failed: %v (%d rows)", err, len(rows))
				}
			}
		})
	}
}

// BenchmarkP9_ScaleLookup measures the qgen hot path at ontology scale:
// a feedback-ranked label lookup (which probes entity degree via
// CountMatch) followed by a two-pattern Eval over the store.
func BenchmarkP9_ScaleLookup(b *testing.B) {
	for _, triples := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("triples=%d", triples), func(b *testing.B) {
			onto := synthFor(triples)
			gen := qgen.New(onto)
			q, err := sparql.Parse(fmt.Sprintf(`SELECT $x $y WHERE {
				$x <%sinstanceOf> <%sclass7> .
				$x <%snear> $y
			}`, ontology.NS, ontology.NS, ontology.NS))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands := gen.RankCandidates("entity 42")
				if len(cands) == 0 {
					b.Fatal("lookup found nothing")
				}
				rows, err := sparql.Eval(q, onto.Store, nil)
				if err != nil || len(rows) == 0 {
					b.Fatalf("eval failed: %v (%d rows)", err, len(rows))
				}
			}
		})
	}
}

// BenchmarkP10_GroupBy measures the analytic path the superlative
// questions take: a grouped COUNT over every near-edge in the store,
// ordered descending on the alias with LIMIT 1 — the "which group is
// biggest" plan shape, dominated by grouping and the typed sort.
// BenchmarkP12_SnapshotRead prices the epoch-snapshot refactor's read
// path: the same two-pattern join evaluated against a flat single-map
// Store and against a published ShardedStore snapshot holding identical
// triples. The acceptance bar is snapshot reads within ~10% of flat —
// the per-pattern cost added by sharding is one hash and, for
// subject-unbound patterns, a loop over (mostly empty) shards.
func BenchmarkP12_SnapshotRead(b *testing.B) {
	for _, triples := range []int{10_000, 100_000} {
		onto := synthFor(triples)
		snap := onto.Snapshot()
		flat := rdf.NewStore()
		for _, t := range snap.All() {
			flat.MustAdd(t)
		}
		q, err := sparql.Parse(fmt.Sprintf(`SELECT $x $y WHERE {
			$x <%sinstanceOf> <%sclass7> .
			$x <%snear> $y
		}`, ontology.NS, ontology.NS, ontology.NS))
		if err != nil {
			b.Fatal(err)
		}
		for _, src := range []struct {
			name string
			s    sparql.Source
		}{{"flat", flat}, {"snapshot", snap}} {
			b.Run(fmt.Sprintf("src=%s/triples=%d", src.name, triples), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rows, err := sparql.Eval(q, src.s, nil)
					if err != nil || len(rows) == 0 {
						b.Fatalf("eval failed: %v (%d rows)", err, len(rows))
					}
				}
			})
		}
	}
}

func BenchmarkP10_GroupBy(b *testing.B) {
	for _, triples := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("triples=%d", triples), func(b *testing.B) {
			onto := synthFor(triples)
			q, err := sparql.Parse(fmt.Sprintf(`SELECT $y COUNT($x) AS $n WHERE {
				$x <%snear> $y
			} GROUP BY $y ORDER BY DESC($n) LIMIT 1`, ontology.NS))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := sparql.Eval(q, onto.Store, nil)
				if err != nil || len(rows) != 1 {
					b.Fatalf("group-by failed: %v (%d rows)", err, len(rows))
				}
			}
		})
	}
}
