// Command loadgen drives a running nl2cmd daemon with many concurrent
// client sessions and reports serving latency percentiles, throughput,
// shed rate and plan-cache effectiveness. It is the measurement side of
// the production-serving work: the numbers it prints (and optionally
// records as JSON) are the repo's in-repo latency records.
//
// Usage:
//
//	nl2cmd -addr :8080 &
//	loadgen -addr http://localhost:8080 -sessions 200 -requests 5000 -out BENCH_$(date +%F)_serving.json
//
// Each session loops over the supported demo-corpus questions, so after
// the first pass over a question shape the daemon's plan cache serves
// hits; loadgen splits latencies by the daemon's X-Plan-Cache header to
// show the cold-vs-cached gap directly.
//
// With -mutate-rate > 0, workers interleave POST /api/store write
// batches with the translation traffic. Every batch publishes a new
// store epoch, which invalidates all cached plans, so this mode
// measures the hit-rate degradation and epoch churn a mutating data
// plane inflicts on the serving path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nl2cm"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the nl2cmd daemon")
	sessions := flag.Int("sessions", 200, "concurrent client sessions")
	requests := flag.Int("requests", 5000, "total requests to issue")
	backend := flag.String("backend", "", "backend dialect to request (empty = default)")
	out := flag.String("out", "", "write the run record as JSON to this file")
	note := flag.String("note", "", "free-form note stored in the JSON record")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	mutateRate := flag.Float64("mutate-rate", 0,
		"fraction of requests preceded by a store write batch (0 disables; each batch publishes a new data epoch)")
	flag.Parse()

	questions := corpusQuestions()
	if len(questions) == 0 {
		log.Fatal("no supported corpus questions to replay")
	}
	client := &http.Client{Timeout: *timeout}

	if err := waitReady(client, *addr); err != nil {
		log.Fatalf("daemon not reachable: %v", err)
	}
	before, _ := fetchStats(client, *addr)

	run := drive(client, *addr, questions, *backend, *sessions, *requests, *mutateRate)
	after, _ := fetchStats(client, *addr)
	run.MutateRate = *mutateRate
	run.finish(before, after)

	run.print(os.Stdout)
	if *out != "" {
		if err := run.writeJSON(*out, *note, *addr, *sessions, *backend); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("\nrecord written to %s\n", *out)
	}
	if run.Errors > 0 {
		os.Exit(1)
	}
}

// corpusQuestions returns the demo questions expected to translate;
// rejected ones would only measure the (cheap) verification path.
func corpusQuestions() []string {
	var qs []string
	for _, q := range nl2cm.Corpus() {
		if q.Supported {
			qs = append(qs, q.Text)
		}
	}
	return qs
}

// waitReady polls the daemon until it answers (10s budget), so loadgen
// can be started in the same breath as the daemon.
func waitReady(client *http.Client, addr string) error {
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var resp *http.Response
		resp, err = client.Get(addr + "/api/backends")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return err
}

// serverStats mirrors the daemon's /api/stats payload (loosely: only
// the fields loadgen reports on).
type serverStats struct {
	PlanCache *nl2cm.PlanCacheStats `json:"plan_cache"`
	Admission struct {
		Admitted int64 `json:"admitted"`
		Rejected int64 `json:"rejected"`
	} `json:"admission"`
	Store struct {
		Epoch   uint64 `json:"epoch"`
		Triples int    `json:"triples"`
	} `json:"store"`
}

func fetchStats(client *http.Client, addr string) (*serverStats, error) {
	resp, err := client.Get(addr + "/api/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// sample is one request's measurement: end-to-end latency as the
// client saw it, plus the daemon-reported translation wall-clock
// (X-Translate-Time), which excludes transport and JSON overhead.
type sample struct {
	latency   time.Duration
	translate time.Duration
	outcome   string // X-Plan-Cache header: miss, hit, rebound, bypass; or "429"/"error"
}

// runResult aggregates a whole run.
type runResult struct {
	Samples    []sample
	Elapsed    time.Duration
	Errors     int
	Shed       int
	ByOut      map[string][]time.Duration // end-to-end latency per outcome
	ByOutTr    map[string][]time.Duration // server translation time per outcome
	HitRate    float64                    // server-side, from /api/stats deltas
	ShedRate   float64
	MutateRate float64
	Mutations  int64  // store write batches issued
	MutErrors  int64  // store write batches that failed
	EpochChurn uint64 // store epochs published during the run
}

// drive issues the load: sessions workers pull request indices from a
// shared counter and replay the question list round-robin, so every
// shape goes cold exactly once and repeats afterwards. With mutateRate
// > 0, every k-th request (k ≈ 1/rate) is preceded by a store write
// batch, so plan-cache epochs churn while translations are in flight.
func drive(client *http.Client, addr string, questions []string, backend string, sessions, requests int, mutateRate float64) *runResult {
	var next atomic.Int64
	every := 0
	if mutateRate > 0 {
		every = int(1 / mutateRate)
		if every < 1 {
			every = 1
		}
	}
	samples := make([]sample, requests)
	res := &runResult{Samples: samples}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				if every > 0 && i%every == 0 {
					seq := atomic.AddInt64(&res.Mutations, 1) - 1
					if err := mutate(client, addr, seq); err != nil {
						atomic.AddInt64(&res.MutErrors, 1)
					}
				}
				samples[i] = issue(client, addr, questions[i%len(questions)], backend)
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// mutate posts one self-cleaning store batch: insert a unique churn
// triple and delete the previous one, so epochs advance without the
// store growing past one extra triple per in-flight mutator.
func mutate(client *http.Client, addr string, seq int64) error {
	const ns = "http://nl2cm.org/onto/"
	churn := func(n int64) string {
		return fmt.Sprintf("<%sChurn_%d> <%snear> <%sChurn_Hub> .", ns, n, ns, ns)
	}
	req := map[string]string{"insert": churn(seq)}
	if seq > 0 {
		req["delete"] = churn(seq - 1)
	}
	body, _ := json.Marshal(req)
	resp, err := client.Post(addr+"/api/store", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: status %d", resp.StatusCode)
	}
	return nil
}

// issue sends one translation request and classifies the response.
func issue(client *http.Client, addr, question, backend string) sample {
	body, _ := json.Marshal(map[string]string{"question": question, "backend": backend})
	t0 := time.Now()
	resp, err := client.Post(addr+"/api/translate", "application/json", bytes.NewReader(body))
	lat := time.Since(t0)
	if err != nil {
		return sample{latency: lat, outcome: "error"}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return sample{latency: lat, outcome: "429"}
	case resp.StatusCode != http.StatusOK:
		return sample{latency: lat, outcome: "error"}
	}
	outcome := resp.Header.Get("X-Plan-Cache")
	if outcome == "" {
		outcome = "bypass"
	}
	tr, _ := time.ParseDuration(resp.Header.Get("X-Translate-Time"))
	return sample{latency: lat, translate: tr, outcome: outcome}
}

// finish derives the aggregate views from the raw samples and the
// server-side counter deltas.
func (r *runResult) finish(before, after *serverStats) {
	r.ByOut = map[string][]time.Duration{}
	r.ByOutTr = map[string][]time.Duration{}
	for _, s := range r.Samples {
		switch s.outcome {
		case "error":
			r.Errors++
		case "429":
			r.Shed++
		}
		r.ByOut[s.outcome] = append(r.ByOut[s.outcome], s.latency)
		if s.translate > 0 {
			r.ByOutTr[s.outcome] = append(r.ByOutTr[s.outcome], s.translate)
		}
	}
	if n := len(r.Samples); n > 0 {
		r.ShedRate = float64(r.Shed) / float64(n)
	}
	if before != nil && after != nil && before.PlanCache != nil && after.PlanCache != nil {
		hits := after.PlanCache.Hits - before.PlanCache.Hits
		misses := after.PlanCache.Misses - before.PlanCache.Misses
		if total := hits + misses; total > 0 {
			r.HitRate = float64(hits) / float64(total)
		}
	}
	if before != nil && after != nil && after.Store.Epoch > before.Store.Epoch {
		r.EpochChurn = after.Store.Epoch - before.Store.Epoch
	}
}

// percentile returns the pth percentile (0–100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func sortedLatencies(ds []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), ds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// served returns the latencies of successfully served requests.
func (r *runResult) served() []time.Duration {
	var ds []time.Duration
	for _, s := range r.Samples {
		if s.outcome != "error" && s.outcome != "429" {
			ds = append(ds, s.latency)
		}
	}
	return ds
}

// coldMedian/cachedMedian split per-request measurements into
// pipeline-run (miss, bypass) and cache-served (hit, rebound) halves.
// They prefer the daemon-reported translation time (transport excluded)
// and fall back to end-to-end latency against daemons that predate the
// X-Translate-Time header.
func medianOf(by map[string][]time.Duration, outcomes ...string) time.Duration {
	var ds []time.Duration
	for _, o := range outcomes {
		ds = append(ds, by[o]...)
	}
	return percentile(sortedLatencies(ds), 50)
}

func (r *runResult) coldMedian() time.Duration {
	if d := medianOf(r.ByOutTr, "miss", "bypass"); d > 0 {
		return d
	}
	return medianOf(r.ByOut, "miss", "bypass")
}

func (r *runResult) cachedMedian() time.Duration {
	if d := medianOf(r.ByOutTr, "hit", "rebound"); d > 0 {
		return d
	}
	return medianOf(r.ByOut, "hit", "rebound")
}

func (r *runResult) print(w io.Writer) {
	served := sortedLatencies(r.served())
	fmt.Fprintf(w, "requests: %d in %v (%.0f req/s), %d errors, %d shed (%.1f%%)\n",
		len(r.Samples), r.Elapsed.Round(time.Millisecond),
		float64(len(served))/r.Elapsed.Seconds(), r.Errors, r.Shed, 100*r.ShedRate)
	fmt.Fprintf(w, "latency: p50 %v  p95 %v  p99 %v  max %v\n",
		percentile(served, 50), percentile(served, 95), percentile(served, 99), percentile(served, 100))
	var parts []string
	for _, o := range []string{"miss", "hit", "rebound", "bypass", "429", "error"} {
		if n := len(r.ByOut[o]); n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", o, n))
		}
	}
	fmt.Fprintf(w, "outcomes: %s\n", strings.Join(parts, " · "))
	if r.HitRate > 0 {
		fmt.Fprintf(w, "server-side cache hit rate: %.1f%%\n", 100*r.HitRate)
	}
	if r.Mutations > 0 || r.EpochChurn > 0 {
		fmt.Fprintf(w, "store churn: %d write batches (%d failed), %d epochs published\n",
			r.Mutations, r.MutErrors, r.EpochChurn)
	}
	cold, cached := r.coldMedian(), r.cachedMedian()
	if cold > 0 && cached > 0 {
		fmt.Fprintf(w, "median translation time: cold %v vs cached %v (%.1fx)\n",
			cold, cached, float64(cold)/float64(cached))
	}
}

// record is the JSON run record (the BENCH_<date>_serving.json shape).
type record struct {
	Date       string             `json:"date"`
	Note       string             `json:"note,omitempty"`
	Addr       string             `json:"addr"`
	Sessions   int                `json:"sessions"`
	Backend    string             `json:"backend,omitempty"`
	Requests   int                `json:"requests"`
	Errors     int                `json:"errors"`
	Shed       int                `json:"shed"`
	ElapsedMs  float64            `json:"elapsed_ms"`
	Throughput float64            `json:"throughput_rps"`
	LatencyMs  map[string]float64 `json:"latency_ms"`
	Outcomes   map[string]int     `json:"outcomes"`
	HitRate    float64            `json:"cache_hit_rate"`
	ColdP50Ms  float64            `json:"cold_p50_ms"`
	HitP50Ms   float64            `json:"cached_p50_ms"`
	Speedup    float64            `json:"cached_speedup"`
	MutateRate float64            `json:"mutate_rate,omitempty"`
	Mutations  int64              `json:"mutations,omitempty"`
	MutErrors  int64              `json:"mutation_errors,omitempty"`
	EpochChurn uint64             `json:"epoch_churn,omitempty"`
}

func (r *runResult) writeJSON(path, note, addr string, sessions int, backend string) error {
	served := sortedLatencies(r.served())
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rec := record{
		Date:       time.Now().Format("2006-01-02"),
		Note:       note,
		Addr:       addr,
		Sessions:   sessions,
		Backend:    backend,
		Requests:   len(r.Samples),
		Errors:     r.Errors,
		Shed:       r.Shed,
		ElapsedMs:  ms(r.Elapsed),
		Throughput: float64(len(served)) / r.Elapsed.Seconds(),
		LatencyMs: map[string]float64{
			"p50": ms(percentile(served, 50)),
			"p95": ms(percentile(served, 95)),
			"p99": ms(percentile(served, 99)),
			"max": ms(percentile(served, 100)),
		},
		Outcomes:   map[string]int{},
		HitRate:    r.HitRate,
		MutateRate: r.MutateRate,
		Mutations:  r.Mutations,
		MutErrors:  r.MutErrors,
		EpochChurn: r.EpochChurn,
	}
	for o, ds := range r.ByOut {
		rec.Outcomes[o] = len(ds)
	}
	cold, cached := r.coldMedian(), r.cachedMedian()
	rec.ColdP50Ms, rec.HitP50Ms = ms(cold), ms(cached)
	if cached > 0 {
		rec.Speedup = float64(cold) / float64(cached)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
