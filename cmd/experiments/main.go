// Command experiments regenerates every experiment of the reproduction:
// the paper's figures (E1-E6), the translation-quality claims (E7), the
// demonstration stages (E8-E10), the §2.3 pattern example (E11) and the
// design-choice ablations (A1-A3). The output is the markdown recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run regexp]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"nl2cm"
	"nl2cm/internal/core"
	"nl2cm/internal/corpus"
	"nl2cm/internal/crowd"
	"nl2cm/internal/eval"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/ontology"
	"nl2cm/internal/verify"
)

const runningExample = "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?"

// figure1 is the paper's Figure 1 text, the E1 target.
const figure1 = `SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`

type experiment struct {
	ID    string
	Title string
	Run   func(env *env) string
}

type env struct {
	onto *ontology.Ontology
	tr   *core.Translator
	eng  *crowd.Engine
}

func main() {
	runPat := flag.String("run", "", "only experiments whose id matches the regexp")
	flag.Parse()
	var re *regexp.Regexp
	if *runPat != "" {
		var err error
		re, err = regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: bad -run pattern:", err)
			os.Exit(1)
		}
	}
	onto := ontology.NewDemoOntology()
	e := &env{onto: onto, tr: core.New(onto), eng: nl2cm.NewDemoEngine(onto)}
	for _, ex := range experiments {
		if re != nil && !re.MatchString(ex.ID) {
			continue
		}
		fmt.Printf("## %s — %s\n\n", ex.ID, ex.Title)
		fmt.Println(ex.Run(e))
	}
}

var experiments = []experiment{
	{"E1", "Figure 1: the running example's OASSIS-QL query", runE1},
	{"E2", "Figure 2: pipeline trace (administrator mode)", runE2},
	{"E3", "Figure 3: question entry and verification", runE3},
	{"E4", "Figure 4: IX verification dialogue", runE4},
	{"E5", "Figure 5: LIMIT / THRESHOLD selection", runE5},
	{"E6", "Figure 6: final query display and edit round-trip", runE6},
	{"E7", "§4.1: translation quality without interaction", runE7},
	{"E8", "Demo stage (i): translating forum questions", runE8},
	{"E9", "Demo stage (ii): executing queries on the OASSIS substitute", runE9},
	{"E10", "Demo stage (iii): unsupported questions and tips", runE10},
	{"E11", "§2.3: the example IX detection pattern", runE11},
	{"E12", "Corpus-wide execution: engine workload and support cache", runE12},
	{"E14", "Crowd mining at scale: sequential sampling vs exhaustive", runE14},
	{"A1", "Ablation: pattern matching vs naive KB-mismatch detection", runA1},
	{"A2", "Ablation: contribution of each IX pattern type", runA2},
	{"A3", "Disambiguation feedback learning (§4.1)", runA3},
}

func runE1(e *env) string {
	res, err := e.tr.Translate(context.Background(), runningExample, core.Options{})
	if err != nil {
		return "ERROR: " + err.Error()
	}
	got := res.Query.String()
	status := "MATCHES the paper byte for byte"
	if got != figure1 {
		status = "DIFFERS from the paper"
	}
	return fmt.Sprintf("Input: %q\n\n```\n%s\n```\n\nResult: %s.\n", runningExample, got, status)
}

func runE2(e *env) string {
	res, err := e.tr.Translate(context.Background(), runningExample, core.Options{Trace: true})
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("Modules in pipeline order with their intermediate outputs:\n\n")
	for _, s := range res.Trace {
		fmt.Fprintf(&b, "### %s\n\n```\n%s\n```\n\n", s.Module, strings.TrimRight(s.Output, "\n"))
	}
	return b.String()
}

func runE3(e *env) string {
	questions := []string{
		runningExample,
		"Which hotel in Vegas has the best thrill ride?",
		"How should I store coffee?",
		"Why is the sky blue?",
	}
	var b strings.Builder
	b.WriteString("| question | verdict | category |\n|---|---|---|\n")
	for _, q := range questions {
		v := verify.Check(q)
		verdict := "accepted"
		if !v.Supported {
			verdict = "rejected"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", q, verdict, v.Category)
	}
	return b.String()
}

func runE4(e *env) string {
	// All patterns behave as uncertain for the figure, as in the paper
	// ("for the sake of the example ... we have marked all the IX
	// detection patterns as uncertain").
	rec := &interact.Recorder{Inner: &interact.Scripted{IXAnswers: [][]bool{{true, true}}}}
	opt := core.Options{
		Interactor: rec,
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointIXVerification: true}},
	}
	res, err := e.tr.Translate(context.Background(), runningExample, opt)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("Detected IXs shown for verification (each highlighted in the UI):\n\n")
	b.WriteString("| expression | individuality | uncertain | user answer |\n|---|---|---|---|\n")
	for i, x := range res.IXs {
		fmt.Fprintf(&b, "| %s | %s | %v | keep (%d) |\n",
			x.Text(res.Graph), strings.Join(x.Types, "+"), x.Uncertain, i+1)
	}
	b.WriteString("\nDialogue transcript:\n\n")
	for _, ex := range rec.Log {
		fmt.Fprintf(&b, "- **%s**: %s → %s\n", ex.Point, ex.Question, ex.Answer)
	}
	return b.String()
}

func runE5(e *env) string {
	// The user sets k=5 for the top-k over interesting places and a
	// minimal frequency of 0.1 for the fall visits — the Figure 1 values.
	rec := &interact.Recorder{Inner: &interact.Scripted{
		TopKAnswers:      []int{5},
		ThresholdAnswers: []float64{0.1},
	}}
	opt := core.Options{
		Interactor: rec,
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointSignificance: true}},
	}
	res, err := e.tr.Translate(context.Background(), runningExample, opt)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("Significance dialogue (defaults 5 / 0.1, as configured):\n\n")
	for _, ex := range rec.Log {
		fmt.Fprintf(&b, "- %s → %s\n", ex.Question, ex.Answer)
	}
	fmt.Fprintf(&b, "\nResulting clauses: LIMIT %d and THRESHOLD %g.\n",
		res.Query.Satisfying[0].TopK.K, *res.Query.Satisfying[1].Threshold)
	return b.String()
}

func runE6(e *env) string {
	res, err := e.tr.Translate(context.Background(), runningExample, core.Options{})
	if err != nil {
		return "ERROR: " + err.Error()
	}
	shown := res.Query.String()
	// The UI allows manually editing the output query; the edit
	// round-trip is parse -> print -> parse.
	edited := strings.Replace(shown, "LIMIT 5", "LIMIT 3", 1)
	q2, err := nl2cm.ParseQuery(edited)
	if err != nil {
		return "ERROR reparsing edited query: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Final query shown to the user:\n\n```\n%s\n```\n\n", shown)
	fmt.Fprintf(&b, "After a manual edit (LIMIT 5 → 3) the query re-parses and re-prints identically: %v.\n",
		q2.String() == edited)
	return b.String()
}

func runE7(e *env) string {
	all := corpus.All()
	det, err := eval.ScoreIXDetection(ix.NewDetector(), all)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	ver := eval.ScoreVerification(all)
	outcomes := eval.TranslateAll(e.tr, all)
	var b strings.Builder
	fmt.Fprintf(&b, "Corpus: %d questions (%d supported, %d unsupported).\n\n", len(all), len(corpus.Supported()), len(corpus.Unsupported()))
	b.WriteString("| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| IX detection precision | %.2f |\n", det.Precision())
	fmt.Fprintf(&b, "| IX detection recall | %.2f |\n", det.Recall())
	fmt.Fprintf(&b, "| IX detection F1 | %.2f |\n", det.F1())
	if tc, tt, err := eval.ScoreIXTypes(ix.NewDetector(), all); err == nil && tt > 0 {
		fmt.Fprintf(&b, "| IX type accuracy | %.2f |\n", float64(tc)/float64(tt))
	}
	fmt.Fprintf(&b, "| verification accuracy | %.2f |\n", ver.Accuracy())
	fmt.Fprintf(&b, "| end-to-end translation success | %.2f |\n", eval.SuccessRate(outcomes))
	return b.String()
}

func runE8(e *env) string {
	outcomes := eval.TranslateAll(e.tr, corpus.All())
	var b strings.Builder
	b.WriteString("| domain | translated ok | total |\n|---|---|---|\n")
	for _, row := range eval.DomainBreakdown(outcomes) {
		fmt.Fprintf(&b, "| %s | %d | %d |\n", row.Domain, row.OK, row.All)
	}
	b.WriteString("\nSample translations:\n\n")
	for _, id := range []string{"travel-02", "shopping-01", "health-01", "food-01"} {
		for _, o := range outcomes {
			if o.ID == id {
				fmt.Fprintf(&b, "**%s** — %s\n\n```\n%s\n```\n\n", o.ID, o.Question, o.Query)
			}
		}
	}
	return b.String()
}

func runE9(e *env) string {
	res, err := e.tr.Translate(context.Background(), runningExample, core.Options{})
	if err != nil {
		return "ERROR: " + err.Error()
	}
	out, err := e.eng.Execute(context.Background(), res.Query)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "WHERE matched %d places near Forest Hotel; %d crowd tasks issued.\n\n",
		out.WhereBindings, out.TasksIssued)
	fmt.Fprintf(&b, "Engine metrics: %d support-cache hits, %d misses this run.\n\n",
		out.CacheHits, out.CacheMisses)
	for _, sc := range out.Subclauses {
		fmt.Fprintf(&b, "Subclause %d tasks:\n\n| support | significant | crowd question |\n|---|---|---|\n", sc.Index+1)
		for _, t := range sc.Tasks {
			fmt.Fprintf(&b, "| %.2f | %v | %s |\n", t.Support, t.Significant, t.Question)
		}
		b.WriteString("\n")
	}
	b.WriteString("Significant bindings (paper §2.1 expects Delaware Park and Buffalo Zoo among them):\n\n")
	var names []string
	for _, bind := range out.Bindings {
		names = append(names, bind["x"].Local())
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	return b.String()
}

func runE12(e *env) string {
	e.eng.ResetCache()
	stats, err := eval.ExecuteCorpus(context.Background(), e.tr, e.eng, corpus.All())
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Translated and executed %d of %d executable corpus queries.\n\n", stats.Executed, stats.Queries)
	fmt.Fprintf(&b, "- crowd tasks issued: %d\n", stats.Tasks)
	fmt.Fprintf(&b, "- support-cache hits / misses: %d / %d (hit rate %.0f%%)\n",
		stats.CacheHits, stats.CacheMisses, 100*stats.HitRate())
	b.WriteString("\nQueries over the same domain re-ask overlapping crowd questions; the\n" +
		"memoized support cache answers those without re-sampling the crowd.\n")
	return b.String()
}

func runE14(e *env) string {
	// Corpus-wide: the streaming sequential-sampling executor (both
	// stopping rules) against the exhaustive engine over identical
	// crowds, then a million-member synthetic population.
	const crowdSize = 1200
	ctx := context.Background()
	mk := func() *crowd.Engine {
		c := nl2cm.NewCrowd(crowdSize, 7)
		c.Truth = nl2cm.DemoTruth()
		return nl2cm.NewEngine(e.onto, c)
	}
	oracle := mk()
	var b strings.Builder
	fmt.Fprintf(&b, "Crowd of %d members; every supported corpus question executed on the\n", crowdSize)
	b.WriteString("exhaustive engine and on the streaming executor under each stopping rule.\n\n")
	b.WriteString("| rule | tasks | answers asked | % of fixed cost | early decided | agree with exhaustive |\n|---|---|---|---|---|---|\n")
	for _, rule := range []struct {
		name string
		r    nl2cm.ScaleRule
	}{{"exact", nl2cm.RuleExact}, {"confidence", nl2cm.RuleConfidence}} {
		eng := mk()
		x, err := nl2cm.NewScaleExecutor(eng.Crowd, nl2cm.ScaleConfig{Rule: rule.r})
		if err != nil {
			return "ERROR: " + err.Error()
		}
		agree := true
		for _, q := range corpus.All() {
			res, err := e.tr.Translate(ctx, q.Text, core.Options{})
			if err != nil || !res.Verdict.Supported || res.Query == nil {
				continue
			}
			want, err := oracle.Execute(ctx, res.Query)
			if err != nil {
				return "ERROR: " + err.Error()
			}
			eng.Scale = x
			got, err := eng.Execute(ctx, res.Query)
			if err != nil {
				return "ERROR: " + err.Error()
			}
			for i := range want.Subclauses {
				ws, gs := map[string]bool{}, map[string]bool{}
				for _, t := range want.Subclauses[i].Significant() {
					ws[t.Key] = true
				}
				for _, t := range got.Subclauses[i].Significant() {
					gs[t.Key] = true
				}
				if len(ws) != len(gs) {
					agree = false
				}
				for k := range ws {
					if !gs[k] {
						agree = false
					}
				}
			}
		}
		st := x.Stats()
		x.Close()
		fixed := st.TasksDecided * crowdSize
		fmt.Fprintf(&b, "| %s | %d | %d | %.1f%% | %d | %v |\n",
			rule.name, st.TasksDecided, st.MemberAnswers,
			100*float64(st.MemberAnswers)/float64(fixed), st.EarlyDecided, agree)
	}
	b.WriteString("\nA million-member synthetic population (skew 1, 2% spammers), 24 tasks\n")
	b.WriteString("straddling a 0.35 threshold:\n\n")
	b.WriteString("| mode | member answers | early decided |\n|---|---|---|\n")
	keys := make([]string, 24)
	truth := map[string]float64{}
	for i := range keys {
		keys[i] = fmt.Sprintf("[] visit Synth_Place_%02d", i)
		truth[keys[i]] = 0.05 + 0.67*float64(i)/23
	}
	pop := &nl2cm.Population{N: 1_000_000, Seed: 7, Truth: truth, Skew: 1, SpamFraction: 0.02}
	for _, mode := range []string{"fixed", "sequential"} {
		x := nl2cm.NewScaleExecutorFrom(pop, nl2cm.ScaleConfig{})
		var err error
		if mode == "fixed" {
			_, err = x.Supports(ctx, keys, 0)
		} else {
			_, err = x.DecideThreshold(ctx, keys, 0.35, 0)
		}
		if err != nil {
			return "ERROR: " + err.Error()
		}
		st := x.Stats()
		x.Close()
		fmt.Fprintf(&b, "| %s | %d | %d |\n", mode, st.MemberAnswers, st.EarlyDecided)
	}
	b.WriteString("\nBoth rules reproduce the exhaustive engine's significant-fact sets; the\n" +
		"sequential path asks only the fraction of answers shown above, and the\n" +
		"confidence rule stays sublinear even at a million members.\n")
	return b.String()
}

func runE10(e *env) string {
	var b strings.Builder
	b.WriteString("| question | category | first tip |\n|---|---|---|\n")
	for _, q := range corpus.Unsupported() {
		v := verify.Check(q.Text)
		tip := ""
		if len(v.Tips) > 0 {
			tip = v.Tips[0]
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", q.Text, v.Category, tip)
	}
	b.WriteString("\nThe paper's coffee pair:\n\n")
	rej := verify.Check("How should I store coffee?")
	acc := verify.Check("At what container should I store coffee?")
	fmt.Fprintf(&b, "- \"How should I store coffee?\" → rejected (%s)\n", rej.Category)
	fmt.Fprintf(&b, "- \"At what container should I store coffee?\" → accepted (%v)\n", acc.Supported)
	return b.String()
}

func runE11(e *env) string {
	src := `PATTERN participant_subject TYPE participant ANCHOR $x
{$x subject $y
filter(POS($x) = "verb" && $y in V_participant)}`
	ps, err := ix.ParsePatterns(src)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	d := ix.NewDetector()
	d.Patterns = ps
	g, err := nlp.Parse(runningExample)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	ixs, err := d.Detect(context.Background(), g)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The paper's §2.3 pattern:\n\n```\n%s\n```\n\nMatches on the running example:\n\n", src)
	for _, x := range ixs {
		fmt.Fprintf(&b, "- anchor %q, completed expression %q\n", g.Nodes[x.Anchor].Text, x.Text(g))
	}
	return b.String()
}

func runA1(e *env) string {
	all := corpus.All()
	det, err := eval.ScoreIXDetection(ix.NewDetector(), all)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	naive, err := eval.ScoreNaive(&eval.NaiveDetector{Onto: e.onto}, all)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("| detector | precision | recall | F1 |\n|---|---|---|---|\n")
	fmt.Fprintf(&b, "| pattern matching (NL2CM) | %.2f | %.2f | %.2f |\n", det.Precision(), det.Recall(), det.F1())
	fmt.Fprintf(&b, "| naive KB-mismatch baseline | %.2f | %.2f | %.2f |\n", naive.Precision(), naive.Recall(), naive.F1())
	return b.String()
}

func runA3(e *env) string {
	curve, err := eval.FeedbackLearningCurve(e.onto,
		"Where do you visit in Buffalo?", "Buffalo", ontology.E("Buffalo,_IL"), 4)
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("A simulated user repeatedly corrects \"Buffalo\" to Buffalo, IL.\n")
	b.WriteString("Rank of the intended entity per round of feedback:\n\n")
	b.WriteString("| corrections | rank of Buffalo, IL | auto mode picks it |\n|---|---|---|\n")
	for _, pt := range curve {
		fmt.Fprintf(&b, "| %d | %d | %v |\n", pt.Round, pt.Rank, pt.AutoCorrect)
	}
	return b.String()
}

func runA2(e *env) string {
	rows, err := eval.PatternTypeAblation(corpus.All())
	if err != nil {
		return "ERROR: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("| configuration | precision | recall | F1 |\n|---|---|---|---|\n")
	for _, r := range rows {
		name := "full detector"
		if r.Dropped != "" {
			name = "without " + r.Dropped + " patterns"
		}
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f |\n", name, r.Score.Precision(), r.Score.Recall(), r.Score.F1())
	}
	return b.String()
}
