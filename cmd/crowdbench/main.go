// Command crowdbench measures crowd-mining execution at population
// scale: significance decisions over a synthetic crowd, fixed full
// sampling versus sequential-sampling early termination (both stopping
// rules), cross-checking that all three modes agree task for task. It
// prints one JSON record; scripts/bench_record.sh merges it into the
// dated BENCH_<date>.json alongside the translation and loadgen
// records.
//
// Usage:
//
//	crowdbench [-members 1000000] [-tasks 24] [-threshold 0.35]
//	           [-seed 7] [-skew 1] [-spam 0.02] [-out crowd.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nl2cm"
)

// modeResult is one execution mode's measurements.
type modeResult struct {
	Mode          string  `json:"mode"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	MemberAnswers uint64  `json:"member_answers"`
	AnswersSaved  uint64  `json:"answers_saved"`
	EarlyDecided  uint64  `json:"early_decided"`
	FullySampled  uint64  `json:"fully_sampled"`
	Batches       uint64  `json:"batches"`
	QueueHighWtr  int64   `json:"queue_high_water"`
	Significant   int     `json:"significant"`
}

// record is the crowdbench JSON output.
type record struct {
	Members    int          `json:"members"`
	Tasks      int          `json:"tasks"`
	Threshold  float64      `json:"threshold"`
	Seed       int64        `json:"seed"`
	Skew       float64      `json:"skew"`
	Spam       float64      `json:"spam"`
	Workers    int          `json:"workers"`
	Modes      []modeResult `json:"modes"`
	AllAgree   bool         `json:"all_modes_agree"`
	SavingsPct float64      `json:"sequential_savings_pct"`
	SpeedupX   float64      `json:"sequential_speedup_x"`
}

func main() {
	members := flag.Int("members", 1_000_000, "population size")
	tasks := flag.Int("tasks", 24, "crowd tasks per run (distinct fact keys)")
	threshold := flag.Float64("threshold", 0.35, "significance threshold")
	seed := flag.Int64("seed", 7, "population seed")
	skew := flag.Float64("skew", 1, "support skew (long tail)")
	spam := flag.Float64("spam", 0.02, "spam-worker fraction")
	out := flag.String("out", "", "write the JSON record to this file (default stdout)")
	flag.Parse()

	keys := make([]string, *tasks)
	truth := make(map[string]float64, *tasks)
	for i := range keys {
		keys[i] = fmt.Sprintf("[] visit Synth_Place_%02d", i)
		truth[keys[i]] = 0.05 + 0.67*float64(i)/float64(*tasks-1)
	}
	pop := &nl2cm.Population{N: *members, Seed: *seed, Truth: truth, Skew: *skew, SpamFraction: *spam}

	rec := record{
		Members: *members, Tasks: *tasks, Threshold: *threshold,
		Seed: *seed, Skew: *skew, Spam: *spam,
	}
	ctx := context.Background()
	sig := make(map[string][]bool)
	for _, mode := range []string{"fixed", "sequential-confidence", "sequential-exact"} {
		cfg := nl2cm.ScaleConfig{}
		if mode == "sequential-exact" {
			cfg.Rule = nl2cm.RuleExact
		}
		x := nl2cm.NewScaleExecutorFrom(pop, cfg)
		t0 := time.Now()
		var decided []bool
		switch mode {
		case "fixed":
			sup, err := x.Supports(ctx, keys, 0)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range sup {
				decided = append(decided, s >= *threshold)
			}
		default:
			decs, err := x.DecideThreshold(ctx, keys, *threshold, 0)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range decs {
				decided = append(decided, d.Significant)
			}
		}
		elapsed := time.Since(t0)
		st := x.Stats()
		x.Close()
		sig[mode] = decided
		n := 0
		for _, s := range decided {
			if s {
				n++
			}
		}
		rec.Workers = st.Workers
		rec.Modes = append(rec.Modes, modeResult{
			Mode:          mode,
			ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
			MemberAnswers: st.MemberAnswers,
			AnswersSaved:  st.AnswersSaved,
			EarlyDecided:  st.EarlyDecided,
			FullySampled:  st.FullySampled,
			Batches:       st.BatchesDispatched,
			QueueHighWtr:  st.QueueHighWater,
			Significant:   n,
		})
	}

	rec.AllAgree = true
	for _, mode := range []string{"sequential-confidence", "sequential-exact"} {
		for i := range keys {
			if sig[mode][i] != sig["fixed"][i] {
				rec.AllAgree = false
				log.Printf("%s disagrees with fixed on task %d", mode, i)
			}
		}
	}
	fixed, seq := rec.Modes[0], rec.Modes[1]
	if fixed.MemberAnswers > 0 {
		rec.SavingsPct = 100 * (1 - float64(seq.MemberAnswers)/float64(fixed.MemberAnswers))
	}
	if seq.ElapsedMS > 0 {
		rec.SpeedupX = fixed.ElapsedMS / seq.ElapsedMS
	}

	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}
	os.Stdout.Write(enc)
}
