// Command oassis executes OASSIS-QL queries against the built-in
// ontologies and the simulated crowd — the stand-in for the OASSIS
// crowd-powered query engine the demonstration connects NL2CM to.
//
// Usage:
//
//	oassis [-crowd n] [-seed n] [-sample n] [query-file]
//
// With no file argument the query is read from stdin. Entity and
// predicate names written as bare identifiers are resolved against the
// demo ontology namespace.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"nl2cm"
	"nl2cm/internal/crowd"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
)

func main() {
	crowdSize := flag.Int("crowd", 100, "simulated crowd size")
	seed := flag.Int64("seed", 7, "crowd seed")
	sample := flag.Int("sample", 0, "members asked per task (0 = all)")
	ontologyFile := flag.String("ontology", "", "load the knowledge base from an N-Triples file")
	flag.Parse()

	var src io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oassis:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	text, err := io.ReadAll(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oassis: reading query:", err)
		os.Exit(1)
	}
	q, err := nl2cm.ParseQuery(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "oassis:", err)
		os.Exit(1)
	}
	rebase(q)

	onto := nl2cm.DemoOntology()
	if *ontologyFile != "" {
		f, err := os.Open(*ontologyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oassis:", err)
			os.Exit(1)
		}
		onto, err = nl2cm.ReadOntology(*ontologyFile, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "oassis:", err)
			os.Exit(1)
		}
	}
	c := nl2cm.NewCrowd(*crowdSize, *seed)
	c.Truth = crowd.DemoTruth()
	eng := nl2cm.NewEngine(onto, c)
	eng.SampleSize = *sample

	// Ctrl-C cancels the in-flight crowd evaluation instead of killing
	// the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	out, err := eng.Execute(ctx, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oassis:", err)
		os.Exit(1)
	}
	fmt.Printf("WHERE matched %d bindings; %d crowd tasks issued\n", out.WhereBindings, out.TasksIssued)
	for _, sc := range out.Subclauses {
		fmt.Printf("subclause %d:\n", sc.Index+1)
		for _, t := range sc.Tasks {
			mark := " "
			if t.Significant {
				mark = "*"
			}
			fmt.Printf("  %s support=%.2f  %s\n", mark, t.Support, t.Question)
		}
	}
	fmt.Println("significant bindings:")
	for _, b := range out.Bindings {
		var parts []string
		for v, t := range b {
			parts = append(parts, "$"+v+"="+t.Local())
		}
		fmt.Println("  " + strings.Join(parts, " "))
	}
}

// rebase resolves bare identifiers of a hand-written query against the
// ontology namespace: known general predicates and entities move into
// the namespace; crowd-facing predicates (hasLabel, habit verbs,
// prepositions) stay bare.
func rebase(q *nl2cm.Query) {
	generalPreds := map[string]bool{
		"instanceOf": true, "subClassOf": true, "label": true,
		"near": true, "locatedIn": true, "contains": true, "richIn": true,
		"hasFeature": true, "madeBy": true, "priceRange": true,
		"serves": true, "goodFor": true,
	}
	fix := func(t rdf.Term, predicate bool) rdf.Term {
		if !t.IsIRI() || strings.Contains(t.Value(), "/") {
			return t
		}
		if predicate {
			if generalPreds[t.Value()] {
				return rdf.NewIRI(ontology.NS + t.Value())
			}
			return t
		}
		return ontology.E(t.Value())
	}
	for i, tr := range q.Where.Triples {
		q.Where.Triples[i] = rdf.T(fix(tr.S, false), fix(tr.P, true), fix(tr.O, false))
	}
	for s := range q.Satisfying {
		for i, tr := range q.Satisfying[s].Pattern.Triples {
			q.Satisfying[s].Pattern.Triples[i] = rdf.T(fix(tr.S, false), fix(tr.P, true), fix(tr.O, false))
		}
	}
}
