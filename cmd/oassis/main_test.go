package main

import (
	"context"
	"testing"

	"nl2cm"
	"nl2cm/internal/ontology"
)

const figure1 = `SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`

func TestRebaseMapsGeneralTermsIntoNamespace(t *testing.T) {
	q, err := nl2cm.ParseQuery(figure1)
	if err != nil {
		t.Fatal(err)
	}
	rebase(q)
	// WHERE predicates and entities moved into the ontology namespace.
	if got := q.Where.Triples[0].P; got != ontology.PredInstanceOf {
		t.Errorf("instanceOf = %v", got)
	}
	if got := q.Where.Triples[1].O; got != ontology.E("Forest_Hotel,_Buffalo,_NY") {
		t.Errorf("entity = %v", got)
	}
	// Crowd-facing predicates stay bare; their entities move.
	sc := q.Satisfying[1]
	if sc.Pattern.Triples[0].P.Value() != "visit" {
		t.Errorf("crowd predicate = %v", sc.Pattern.Triples[0].P)
	}
	if sc.Pattern.Triples[1].O != ontology.E("Fall") {
		t.Errorf("crowd entity = %v", sc.Pattern.Triples[1].O)
	}
	// Literals untouched.
	if q.Satisfying[0].Pattern.Triples[0].O.Value() != "interesting" {
		t.Errorf("literal = %v", q.Satisfying[0].Pattern.Triples[0].O)
	}
}

func TestRebasedQueryExecutes(t *testing.T) {
	q, err := nl2cm.ParseQuery(figure1)
	if err != nil {
		t.Fatal(err)
	}
	rebase(q)
	onto := nl2cm.DemoOntology()
	eng := nl2cm.NewDemoEngine(onto)
	out, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if out.WhereBindings != 5 || len(out.Bindings) == 0 {
		t.Errorf("where=%d final=%d", out.WhereBindings, len(out.Bindings))
	}
}
