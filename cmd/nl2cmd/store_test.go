package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postStore sends one /api/store batch and decodes the response.
func postStore(t *testing.T, s *server, body string) (storeResponse, *httptest.ResponseRecorder) {
	t.Helper()
	req := httptest.NewRequest("POST", "/api/store", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.apiStore(rec, req)
	var resp storeResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode store response: %v\n%s", err, rec.Body.String())
		}
	}
	return resp, rec
}

// TestAPIStoreInsertThenTranslate is the end-to-end freshness check for
// the mutable data plane: a city inserted over HTTP must resolve in the
// very next translation request, with no restart and no cache flush.
func TestAPIStoreInsertThenTranslate(t *testing.T) {
	s := testServer(t)
	const ns = "http://nl2cm.org/onto/"
	insert := fmt.Sprintf(`{"insert": "<%sNewville> <%slabel> \"Newville\" .\n<%sNewville> <%sinstanceOf> <%sCity> ."}`,
		ns, ns, ns, ns, ns)

	resp, rec := postStore(t, s, insert)
	if rec.Code != http.StatusOK {
		t.Fatalf("store status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Added != 2 || resp.Removed != 0 {
		t.Fatalf("added/removed = %d/%d, want 2/0", resp.Added, resp.Removed)
	}
	if resp.Epoch == 0 {
		t.Fatal("batch published epoch 0")
	}

	req := httptest.NewRequest("POST", "/api/translate",
		strings.NewReader(`{"question": "Which restaurants are near Newville?"}`))
	tr := httptest.NewRecorder()
	s.apiTranslate(tr, req)
	if tr.Code != http.StatusOK {
		t.Fatalf("translate status = %d: %s", tr.Code, tr.Body.String())
	}
	if body := tr.Body.String(); !strings.Contains(body, "Newville") {
		t.Errorf("translation after insert does not mention the new city:\n%s", body)
	}
}

// TestAPIStoreDelete checks the delete half and the epoch advance
// between consecutive batches.
func TestAPIStoreDelete(t *testing.T) {
	s := testServer(t)
	const triple = `<http://nl2cm.org/onto/Tmp> <http://nl2cm.org/onto/label> \"Tmp\" .`

	ins, rec := postStore(t, s, `{"insert": "`+triple+`"}`)
	if rec.Code != http.StatusOK || ins.Added != 1 {
		t.Fatalf("insert: status %d, added %d", rec.Code, ins.Added)
	}
	del, rec := postStore(t, s, `{"delete": "`+triple+`"}`)
	if rec.Code != http.StatusOK || del.Removed != 1 {
		t.Fatalf("delete: status %d, removed %d", rec.Code, del.Removed)
	}
	if del.Epoch <= ins.Epoch {
		t.Fatalf("epoch did not advance: %d then %d", ins.Epoch, del.Epoch)
	}
}

// TestAPIStoreRejectsBadBatches covers the 400 paths: malformed JSON,
// unparsable N-Triples, and an empty batch.
func TestAPIStoreRejectsBadBatches(t *testing.T) {
	s := testServer(t)
	for name, body := range map[string]string{
		"bad json":      `{`,
		"bad n-triples": `{"insert": "this is not a triple"}`,
		"empty batch":   `{}`,
		"variable":      `{"insert": "?x <http://nl2cm.org/onto/label> \"X\" ."}`,
	} {
		_, rec := postStore(t, s, body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, rec.Code)
		}
	}
}

// TestAPIStatsStoreSection checks /api/stats surfaces the store's
// epoch, triple total, and per-shard sizes, and that they track writes.
func TestAPIStatsStoreSection(t *testing.T) {
	s := testServer(t)
	stats := func() statsResponse {
		rec := httptest.NewRecorder()
		s.apiStats(rec, httptest.NewRequest("GET", "/api/stats", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status = %d", rec.Code)
		}
		var out statsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	before := stats()
	if before.Store.Triples == 0 {
		t.Fatal("stats reports an empty store")
	}
	if len(before.Store.Shards) == 0 {
		t.Fatal("stats reports no shards")
	}
	sum := 0
	for _, n := range before.Store.Shards {
		sum += n
	}
	if sum != before.Store.Triples {
		t.Fatalf("shard sizes sum to %d, want %d", sum, before.Store.Triples)
	}

	if _, rec := postStore(t, s, `{"insert": "<http://nl2cm.org/onto/A> <http://nl2cm.org/onto/near> <http://nl2cm.org/onto/B> ."}`); rec.Code != http.StatusOK {
		t.Fatalf("insert status = %d", rec.Code)
	}
	after := stats()
	if after.Store.Epoch <= before.Store.Epoch {
		t.Fatalf("epoch did not advance: %d then %d", before.Store.Epoch, after.Store.Epoch)
	}
	if after.Store.Triples != before.Store.Triples+1 {
		t.Fatalf("triples = %d, want %d", after.Store.Triples, before.Store.Triples+1)
	}
}
