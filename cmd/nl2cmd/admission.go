// Admission control for the serving daemon: a bounded pool of execution
// slots with a bounded wait queue in front of it. Up to maxInflight
// requests translate concurrently; up to queueDepth more wait for a
// slot; anything beyond that is shed immediately with 429 so overload
// degrades into fast rejections instead of ever-growing latency.
package main

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// admission is the daemon's load shedder. A slot must be acquired
// before any translation work starts and released when the request
// finishes; the queued gauge bounds how many acquirers may block.
type admission struct {
	slots      chan struct{}
	queueDepth int64

	queued   atomic.Int64 // requests currently waiting for a slot
	inflight atomic.Int64 // requests currently holding a slot
	admitted atomic.Int64 // lifetime: requests that got a slot
	rejected atomic.Int64 // lifetime: requests shed with 429
	waitNs   atomic.Int64 // lifetime: total queue wait, for the average
}

// newAdmission builds a limiter with maxInflight concurrent slots and a
// wait queue of queueDepth; non-positive values fall back to defaults.
func newAdmission(maxInflight, queueDepth int) *admission {
	if maxInflight <= 0 {
		maxInflight = defaultMaxInflight
	}
	if queueDepth < 0 {
		queueDepth = defaultQueueDepth
	}
	return &admission{
		slots:      make(chan struct{}, maxInflight),
		queueDepth: int64(queueDepth),
	}
}

// acquire takes an execution slot, waiting in the queue if none is
// free. It returns the time spent queued and a release function, or
// false when the queue is full (shed) or ctx ended while waiting.
func (a *admission) acquire(ctx context.Context) (wait time.Duration, release func(), ok bool) {
	// Fast path: a free slot means zero queue time.
	select {
	case a.slots <- struct{}{}:
		return 0, a.grant(), true
	default:
	}
	// Reserve a queue position; beyond queueDepth the request is shed.
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return 0, nil, false
	}
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		wait = time.Since(start)
		a.waitNs.Add(int64(wait))
		return wait, a.grant(), true
	case <-ctx.Done():
		a.queued.Add(-1)
		a.rejected.Add(1)
		return 0, nil, false
	}
}

// grant records an admission and returns its release function.
func (a *admission) grant() func() {
	a.admitted.Add(1)
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}
}

// admissionStats is the monitoring snapshot (admin page, /api/stats).
type admissionStats struct {
	MaxInflight int           `json:"max_inflight"`
	QueueDepth  int           `json:"queue_depth"`
	Inflight    int64         `json:"inflight"`
	Queued      int64         `json:"queued"`
	Admitted    int64         `json:"admitted"`
	Rejected    int64         `json:"rejected"`
	AvgWait     time.Duration `json:"avg_wait_ns"`
}

func (a *admission) stats() admissionStats {
	st := admissionStats{
		MaxInflight: cap(a.slots),
		QueueDepth:  int(a.queueDepth),
		Inflight:    a.inflight.Load(),
		Queued:      a.queued.Load(),
		Admitted:    a.admitted.Load(),
		Rejected:    a.rejected.Load(),
	}
	if st.Admitted > 0 {
		st.AvgWait = time.Duration(a.waitNs.Load() / st.Admitted)
	}
	return st
}

// queueWaitKey carries a request's queue wait through its context so
// doTranslate can prepend it to the trace as the Admission Queue stage.
type queueWaitKey struct{}

// admit wraps a translation-serving handler with admission control.
// Shed requests get 429 with Retry-After so well-behaved clients back
// off; admitted ones carry their queue wait in the request context.
func (s *server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		wait, release, ok := s.adm.acquire(r.Context())
		if !ok {
			if r.Context().Err() != nil {
				// The client gave up while queued; nothing to write.
				http.Error(w, "client closed request", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded: admission queue full", http.StatusTooManyRequests)
			return
		}
		defer release()
		if wait > 0 {
			r = r.WithContext(context.WithValue(r.Context(), queueWaitKey{}, wait))
		}
		h(w, r)
	}
}
