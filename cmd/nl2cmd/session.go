// Interactive dialogue sessions over HTTP: the REST protocol driving
// internal/session, plus a server-rendered page that makes the paper's
// Figures 3–6 flow clickable.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strconv"
	"strings"

	"nl2cm/internal/compose"
	"nl2cm/internal/interact"
	"nl2cm/internal/prov"
	"nl2cm/internal/session"
)

// sessionStartRequest is the POST /api/session body.
type sessionStartRequest struct {
	Question string `json:"question"`
}

// sessionAnswerRequest is the POST /api/session/{id}/answer body: the
// pending question's id plus the Answer fields matching its kind.
type sessionAnswerRequest struct {
	Question int `json:"question"`
	session.Answer
}

// writeSnapshot serializes a session snapshot as the API response.
func writeSnapshot(w http.ResponseWriter, status int, snap session.Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		log.Printf("session encode: %v", err)
	}
}

// sessionError maps the session package's typed errors to HTTP statuses.
func sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, session.ErrBadAnswer):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, session.ErrNoPending), errors.Is(err, session.ErrWrongQuestion):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, session.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// apiSessionStart starts a dialogue session and replies with its first
// pending question (or its terminal state, for question-free requests).
func (s *server) apiSessionStart(w http.ResponseWriter, r *http.Request) {
	var req sessionStartRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		http.Error(w, "bad request: empty question", http.StatusBadRequest)
		return
	}
	sess, err := s.sess.Start(req.Question)
	if err != nil {
		sessionError(w, err)
		return
	}
	snap := sess.WaitQuestion(r.Context(), s.answerWait)
	writeSnapshot(w, http.StatusCreated, snap)
}

// apiSessionGet polls a session's state.
func (s *server) apiSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sess.Get(r.PathValue("id"))
	if !ok {
		sessionError(w, session.ErrNotFound)
		return
	}
	writeSnapshot(w, http.StatusOK, sess.Snapshot())
}

// apiSessionAnswer resolves the pending question, then waits briefly for
// the next question (or completion) so one round trip advances the
// dialogue a full turn.
func (s *server) apiSessionAnswer(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sess.Get(r.PathValue("id"))
	if !ok {
		sessionError(w, session.ErrNotFound)
		return
	}
	var req sessionAnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := sess.Answer(req.Question, req.Answer); err != nil {
		sessionError(w, err)
		return
	}
	snap := sess.WaitQuestion(r.Context(), s.answerWait)
	writeSnapshot(w, http.StatusOK, snap)
}

// explainResponse is the GET /api/session/{id}/explain body: the
// provenance view of a finished translation — every emitted triple's
// source spans, the composition decisions, and the uncovered-word report.
type explainResponse struct {
	Question     string             `json:"question"`
	Supported    bool               `json:"supported"`
	Reason       string             `json:"reason,omitempty"`
	Query        string             `json:"query,omitempty"`
	Annotated    string             `json:"annotated_query,omitempty"`
	Provenance   []prov.Record      `json:"provenance,omitempty"`
	Decisions    []compose.Decision `json:"compose_decisions,omitempty"`
	Uncovered    []prov.TokenInfo   `json:"uncovered,omitempty"`
	CoverageTips []string           `json:"coverage_tips,omitempty"`
}

// apiSessionExplain reports where each triple of a finished session's
// query came from. Before the translation completes it answers 409: the
// provenance views exist only on the final Result.
func (s *server) apiSessionExplain(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sess.Get(r.PathValue("id"))
	if !ok {
		sessionError(w, session.ErrNotFound)
		return
	}
	res := sess.Snapshot().Result
	if res == nil {
		http.Error(w, "session: translation not finished", http.StatusConflict)
		return
	}
	resp := explainResponse{Question: res.Question, Supported: res.Verdict.Supported}
	if !res.Verdict.Supported {
		resp.Reason = res.Verdict.Reason
	} else {
		resp.Query = res.Query.String()
		resp.Annotated = res.AnnotatedQuery()
		resp.Provenance = res.ProvenanceRecords()
		resp.Decisions = res.ComposeDecisions
		resp.Uncovered = res.Uncovered
		resp.CoverageTips = res.CoverageTips
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("explain encode: %v", err)
	}
}

// apiSessionDelete aborts and forgets a session.
func (s *server) apiSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sess.Delete(r.PathValue("id")) {
		sessionError(w, session.ErrNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------
// The clickable dialogue page.

var dialogueTmpl = template.Must(template.New("dialogue").Parse(`<!doctype html>
<html><head><title>NL2CM dialogue</title>
{{if .Refresh}}<meta http-equiv="refresh" content="2">{{end}}
<style>
body{font-family:sans-serif;max-width:56em;margin:2em auto;padding:0 1em}
textarea{width:100%;height:4em;font-size:1em}
pre{background:#f4f4f4;padding:1em;overflow-x:auto}
.turn{color:#555;margin:.2em 0}
.q{background:#eef4ff;padding:1em;margin:1em 0;border:1px solid #a9d3ff}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.3em .6em}
.tip{color:#a33}
mark.ix-lexical{background:#ffe08a}mark.ix-participant{background:#a8e6a1}
mark.ix-syntactic{background:#a9d3ff}mark.ix-mixed{background:#e2b7f0}
</style></head><body>
<h1>NL2CM dialogue</h1>
<p><a href="/">single-shot form</a> · <a href="/admin">administrator mode</a></p>
{{if not .Snap}}
<p>Start an interactive translation: the system will come back to you
with the paper's verification, disambiguation, significance and
projection questions.</p>
<form method="post" action="/dialogue">
<textarea name="q">Where do you visit in Buffalo?</textarea><br>
<button type="submit">Start dialogue</button>
</form>
{{else}}
<p>Session <code>{{.Snap.ID}}</code> — state <b>{{.Snap.State}}</b></p>
{{range .Snap.Turns}}
<p class="turn"><b>{{.Question.PointName}}</b>: {{.Question.Prompt}} → {{.Answer}} <i>({{.Source}})</i></p>
{{end}}
{{with .Snap.Question}}
<div class="q">
<p><b>{{.Prompt}}</b>{{if .Subject}} <i>({{.Subject}})</i>{{end}}</p>
<form method="post" action="/dialogue/answer">
<input type="hidden" name="id" value="{{$.Snap.ID}}">
<input type="hidden" name="qid" value="{{.ID}}">
<input type="hidden" name="kind" value="{{.Kind}}">
{{if eq .Kind "ix-verify"}}
{{if $.Highlight}}<p>{{$.Highlight}}</p>{{end}}
<input type="hidden" name="count" value="{{len .Spans}}">
<table><tr><th>expression</th><th>source phrase</th><th>individuality</th><th>ask the crowd?</th></tr>
{{range $i, $sp := .Spans}}<tr><td>{{$sp.Text}}</td>
<td>&ldquo;{{$sp.Source}}&rdquo; <small>(bytes {{$sp.ByteStart}}–{{$sp.ByteEnd}})</small></td><td>{{$sp.Type}}</td>
<td><select name="accept{{$i}}"><option value="yes">yes</option><option value="no">no</option></select></td></tr>{{end}}
</table>
{{else if eq .Kind "choice"}}
{{range $i, $c := .Choices}}
<p><label><input type="radio" name="choice" value="{{$i}}" {{if eq $i 0}}checked{{end}}>
{{$c.Label}} — {{$c.Description}}</label></p>{{end}}
{{else if eq .Kind "number"}}
<p><input name="number" value="{{.Default}}">
{{if .Integer}}(a whole number ≥ {{.Min}}){{else}}(between {{.Min}} and {{.Max}}){{end}}</p>
{{else if eq .Kind "projection"}}
<input type="hidden" name="count" value="{{len .Vars}}">
<table><tr><th>variable</th><th>phrase</th><th>include?</th></tr>
{{range $i, $v := .Vars}}<tr><td>${{$v.Var}}</td><td>{{$v.Phrase}}</td>
<td><select name="accept{{$i}}"><option value="yes">yes</option><option value="no">no</option></select></td></tr>{{end}}
</table>
{{end}}
<button type="submit">Answer</button>
</form>
</div>
{{end}}
{{if .Snap.Query}}<h2>Final OASSIS-QL query</h2><pre>{{.Snap.Query}}</pre>
{{if .Annotated}}<h2>Where each triple came from</h2><pre>{{.Annotated}}</pre>{{end}}
<p><a href="/api/session/{{.Snap.ID}}/explain">full provenance (JSON)</a></p>{{end}}
{{if .Snap.Unsupported}}<p class="tip">Question not supported: {{.Snap.Reason}}</p>{{end}}
{{if .Snap.Error}}<p class="tip">{{.Snap.Error}}</p>{{end}}
{{if not .Snap.State.Terminal}}
<form method="post" action="/dialogue/delete" style="margin-top:1em">
<input type="hidden" name="id" value="{{.Snap.ID}}">
<button type="submit">Abort session</button>
</form>
{{end}}
{{end}}
</body></html>`))

type dialogueData struct {
	Snap *session.Snapshot
	// Refresh auto-reloads the page while the pipeline is computing
	// (running, no pending question yet).
	Refresh bool
	// Highlight is the pending ix-verify question with each detected
	// expression's byte span wrapped in a colored mark.
	Highlight template.HTML
	// Annotated is the finished query with per-triple source comments.
	Annotated string
}

// highlightSpans renders the question with each IX's byte range wrapped
// in a <mark> colored by individuality type. Spans index the original
// question (clamped defensively); where spans overlap, the first wins.
func highlightSpans(q string, spans []interact.IXSpan) template.HTML {
	cls := make([]string, len(q))
	for _, sp := range spans {
		c := "ix-mixed"
		if sp.Type != "" && !strings.Contains(sp.Type, "+") {
			c = "ix-" + sp.Type
		}
		start, end := max(sp.ByteStart, 0), min(sp.ByteEnd, len(q))
		for i := start; i < end; i++ {
			if cls[i] == "" {
				cls[i] = c
			}
		}
	}
	var b strings.Builder
	for i := 0; i < len(q); {
		j := i
		for j < len(q) && cls[j] == cls[i] {
			j++
		}
		seg := template.HTMLEscapeString(q[i:j])
		if cls[i] == "" {
			b.WriteString(seg)
		} else {
			fmt.Fprintf(&b, `<mark class=%q>%s</mark>`, cls[i], seg)
		}
		i = j
	}
	return template.HTML(b.String())
}

func (s *server) renderDialogue(w http.ResponseWriter, d dialogueData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dialogueTmpl.Execute(w, d); err != nil {
		log.Printf("dialogue render: %v", err)
	}
}

// dialoguePage shows the start form, or the session named by ?id=.
func (s *server) dialoguePage(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.renderDialogue(w, dialogueData{})
		return
	}
	sess, ok := s.sess.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	snap := sess.Snapshot()
	d := dialogueData{
		Snap:    &snap,
		Refresh: snap.Question == nil && !snap.State.Terminal(),
	}
	if q := snap.Question; q != nil && q.Kind == session.KindIXVerify {
		d.Highlight = highlightSpans(q.Subject, q.Spans)
	}
	if snap.Result != nil && snap.Result.Verdict.Supported {
		d.Annotated = snap.Result.AnnotatedQuery()
	}
	s.renderDialogue(w, d)
}

// dialogueStart starts a session from the HTML form and redirects to its
// page.
func (s *server) dialogueStart(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.FormValue("q"))
	if q == "" {
		http.Error(w, "empty question", http.StatusBadRequest)
		return
	}
	sess, err := s.sess.Start(q)
	if err != nil {
		sessionError(w, err)
		return
	}
	sess.WaitQuestion(r.Context(), s.answerWait)
	http.Redirect(w, r, "/dialogue?id="+sess.ID(), http.StatusSeeOther)
}

// dialogueAnswer translates the HTML form fields into a typed Answer.
func (s *server) dialogueAnswer(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sess.Get(r.FormValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	qid, err := strconv.Atoi(r.FormValue("qid"))
	if err != nil {
		http.Error(w, "bad question id", http.StatusBadRequest)
		return
	}
	var ans session.Answer
	switch session.Kind(r.FormValue("kind")) {
	case session.KindIXVerify, session.KindProjection:
		count, err := strconv.Atoi(r.FormValue("count"))
		if err != nil || count < 0 || count > 1000 {
			http.Error(w, "bad flag count", http.StatusBadRequest)
			return
		}
		ans.Accept = make([]bool, count)
		for i := range ans.Accept {
			ans.Accept[i] = r.FormValue("accept"+strconv.Itoa(i)) != "no"
		}
	case session.KindChoice:
		c, err := strconv.Atoi(r.FormValue("choice"))
		if err != nil {
			http.Error(w, "bad choice", http.StatusBadRequest)
			return
		}
		ans.Choice = &c
	case session.KindNumber:
		n, err := strconv.ParseFloat(strings.TrimSpace(r.FormValue("number")), 64)
		if err != nil {
			http.Error(w, "bad number", http.StatusBadRequest)
			return
		}
		ans.Number = &n
	default:
		http.Error(w, "bad question kind", http.StatusBadRequest)
		return
	}
	if err := sess.Answer(qid, ans); err != nil {
		sessionError(w, err)
		return
	}
	sess.WaitQuestion(r.Context(), s.answerWait)
	http.Redirect(w, r, "/dialogue?id="+sess.ID(), http.StatusSeeOther)
}

// dialogueDelete aborts a session from the HTML page.
func (s *server) dialogueDelete(w http.ResponseWriter, r *http.Request) {
	s.sess.Delete(r.FormValue("id"))
	http.Redirect(w, r, "/dialogue", http.StatusSeeOther)
}
