// Command nl2cmd serves the NL2CM web UI: a text field for NL questions
// (paper Figure 3), highlighted IX verification (Figure 4), significance
// selection (Figure 5), the final query display (Figure 6), and the
// administrator-mode monitor showing every module's intermediate output.
//
// Usage:
//
//	nl2cmd [-addr :8080] [-timeout 30s] [-crowd-size 100] [-crowd-seed 7] [-crowd-scale]
//
// Requests are served concurrently: the Translator and the crowd Engine
// are safe for concurrent use, so no lock is held across a translation
// or an execution. Each request is bounded by its own context (the
// client's, plus -timeout); a translation whose client disconnects is
// cancelled mid-pipeline, and a crowd evaluation is cancelled between
// task batches. The admin page shows the last translation's trace plus
// the crowd engine's metrics (tasks, per-subclause wall-clock,
// support-cache hits).
//
// Interactive dialogue sessions (paper Figures 3–6 as a protocol) are
// served by the session endpoints: a translation parks at each
// interaction point and a remote client drives it by polling and
// posting answers. Accepted disambiguation answers accumulate in the
// shared feedback store, which -feedback persists across restarts
// (periodic flush plus an atomic write on shutdown).
//
// Endpoints:
//
//	GET    /                      the question form
//	POST   /translate             translate a question (form fields "q", optional "backend")
//	POST   /execute               translate and run on the simulated crowd
//	GET    /admin                 admin trace, engine and session metrics
//	GET    /corpus                the demo question corpus, one-click translation
//	POST   /api/translate         JSON API: {"question": "...", "backend": "sql"}
//	POST   /api/store             apply an N-Triples insert/delete batch to the knowledge store
//	GET    /api/stats             plan-cache, admission, session, crowd and store counters
//	GET    /api/backends          the registered backend dialects and their capabilities
//	POST   /api/session           start a dialogue session
//	GET    /api/session/{id}      poll a session
//	POST   /api/session/{id}/answer  answer its pending question
//	DELETE /api/session/{id}      abort a session
//	GET    /dialogue              the clickable dialogue page
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"nl2cm"
	"nl2cm/internal/ix"
	"nl2cm/internal/qgen"
	"nl2cm/internal/session"
)

// server shares one Translator and one Engine across requests. Both are
// safe for concurrent use; the mutex guards only the admin-mode `last`
// trace snapshot — it is never held across a translation, so requests
// proceed in parallel.
type server struct {
	tr      *nl2cm.Translator
	eng     *nl2cm.Engine
	timeout time.Duration

	// scale is the streaming crowd executor when -crowd-scale is on; the
	// server owns it and closes it on shutdown.
	scale *nl2cm.ScaleExecutor

	// adm is the admission limiter in front of every translation-serving
	// endpoint (see admission.go).
	adm *admission

	// sess owns the interactive dialogue sessions; answerWait bounds how
	// long a start/answer request blocks waiting for the next question,
	// and feedbackPath (when set) is where the disambiguation feedback
	// store persists.
	sess         *session.Manager
	answerWait   time.Duration
	feedbackPath string

	// ixStats tallies per-pattern IX matches and the matched span text of
	// recent translations for the admin page; the detector records into it.
	ixStats *ix.MatchStats

	mu       sync.Mutex // guards last and lastExec only
	last     *nl2cm.Result
	lastExec *engineStats
}

// Admission-control defaults (the -max-inflight and -queue-depth
// flags). 64 concurrent translations saturate typical hosts while the
// 256-deep queue absorbs bursts a few seconds long; beyond it, load is
// shed with 429.
const (
	defaultMaxInflight = 64
	defaultQueueDepth  = 256
	defaultPlanCache   = 1024
)

// serverConfig collects the daemon's tunables (one field per flag).
type serverConfig struct {
	timeout         time.Duration
	feedback        string
	sessions        int
	sessionTTL      time.Duration
	questionTimeout time.Duration
	answerWait      time.Duration

	// planCache is the plan cache capacity in shapes (0 disables the
	// cache entirely; negative means DefaultCapacity).
	planCache int
	// maxInflight / queueDepth parameterize the admission limiter.
	maxInflight int
	queueDepth  int

	// crowdSize / crowdSeed configure the simulated crowd (defaults: the
	// demo crowd, 100 members, seed 7); crowdScale routes crowd tasks
	// through the streaming sequential-sampling executor.
	crowdSize  int
	crowdSeed  int64
	crowdScale bool
}

// newServer builds the shared translator, engine and session manager,
// loading the persisted feedback store when configured.
func newServer(cfg serverConfig) (*server, error) {
	onto := nl2cm.DemoOntology()
	tr := nl2cm.NewTranslator(onto)
	if cfg.feedback != "" {
		f, err := qgen.LoadFeedback(cfg.feedback)
		if err != nil {
			return nil, err
		}
		tr.Generator.Feedback = f
	}
	if cfg.answerWait <= 0 {
		cfg.answerWait = 2 * time.Second
	}
	if cfg.planCache != 0 {
		tr.Cache = nl2cm.NewPlanCache(cfg.planCache)
	}
	if cfg.crowdSize <= 0 {
		cfg.crowdSize = 100
	}
	if cfg.crowdSeed == 0 {
		cfg.crowdSeed = 7
	}
	c := nl2cm.NewCrowd(cfg.crowdSize, cfg.crowdSeed)
	c.Truth = nl2cm.DemoTruth()
	eng := nl2cm.NewEngine(onto, c)
	var scale *nl2cm.ScaleExecutor
	if cfg.crowdScale {
		x, err := nl2cm.NewScaleExecutor(c, nl2cm.ScaleConfig{})
		if err != nil {
			return nil, err
		}
		scale = x
		eng.Scale = x
	}
	s := &server{
		tr:           tr,
		eng:          eng,
		scale:        scale,
		timeout:      cfg.timeout,
		adm:          newAdmission(cfg.maxInflight, cfg.queueDepth),
		answerWait:   cfg.answerWait,
		feedbackPath: cfg.feedback,
		ixStats:      ix.NewMatchStats(10),
	}
	tr.Detector.Stats = s.ixStats
	s.sess = session.NewManager(session.Config{
		Translator:      tr,
		Capacity:        cfg.sessions,
		TTL:             cfg.sessionTTL,
		QuestionTimeout: cfg.questionTimeout,
		Trace:           true,
		OnDone:          s.sessionDone,
	})
	return s, nil
}

// sessionDone snapshots a finished dialogue's result for the admin
// trace, like single-shot translations do.
func (s *server) sessionDone(sess *session.Session) {
	snap := sess.Snapshot()
	if snap.Result != nil {
		s.mu.Lock()
		s.last = snap.Result
		s.mu.Unlock()
	}
}

// close releases server-owned resources: the dialogue sessions and,
// when -crowd-scale is on, the streaming executor's worker pool.
func (s *server) close() {
	s.sess.Close()
	if s.scale != nil {
		s.scale.Close()
	}
}

// saveFeedback persists the learned disambiguation feedback; Save is an
// atomic replace, so readers of the file never see a truncated store.
func (s *server) saveFeedback() {
	if s.feedbackPath == "" {
		return
	}
	if err := s.tr.Generator.Feedback.Save(s.feedbackPath); err != nil {
		log.Printf("feedback save: %v", err)
	}
}

// engineStats is the admin-page snapshot of the last crowd execution:
// per-subclause wall-clock, tasks issued, and support-cache outcomes.
type engineStats struct {
	Question    string
	Tasks       int
	CacheHits   int
	CacheMisses int
	Elapsed     time.Duration
	Subclauses  []subclauseStat
}

type subclauseStat struct {
	Index    int
	Tasks    int
	Duration time.Duration
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request translation timeout (0 = none)")
	feedback := flag.String("feedback", "", "disambiguation feedback store path (loaded at start, persisted on shutdown and each -feedback-flush)")
	flush := flag.Duration("feedback-flush", 30*time.Second, "feedback persistence interval (0 = shutdown only)")
	sessions := flag.Int("sessions", session.DefaultCapacity, "max live dialogue sessions (oldest-idle evicted beyond)")
	sessionTTL := flag.Duration("session-ttl", session.DefaultTTL, "dialogue session lifetime")
	questionTimeout := flag.Duration("question-timeout", session.DefaultQuestionTimeout, "per-question deadline before the automatic answer applies")
	planCache := flag.Int("plan-cache", defaultPlanCache, "plan cache capacity in question shapes (0 disables caching)")
	maxInflight := flag.Int("max-inflight", defaultMaxInflight, "max concurrent translations before requests queue")
	queueDepth := flag.Int("queue-depth", defaultQueueDepth, "max requests queued for a translation slot before 429s")
	crowdSize := flag.Int("crowd-size", 100, "simulated crowd population size")
	crowdSeed := flag.Int64("crowd-seed", 7, "simulated crowd seed")
	crowdScale := flag.Bool("crowd-scale", false, "stream crowd tasks through the sequential-sampling executor (early termination)")
	flag.Parse()
	s, err := newServer(serverConfig{
		timeout:         *timeout,
		feedback:        *feedback,
		sessions:        *sessions,
		sessionTTL:      *sessionTTL,
		questionTimeout: *questionTimeout,
		planCache:       *planCache,
		maxInflight:     *maxInflight,
		queueDepth:      *queueDepth,
		crowdSize:       *crowdSize,
		crowdSeed:       *crowdSeed,
		crowdScale:      *crowdScale,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      s.routes(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: *timeout + 10*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *feedback != "" && *flush > 0 {
		go func() {
			t := time.NewTicker(*flush)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s.saveFeedback()
				}
			}
		}()
	}
	log.Printf("nl2cmd listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("nl2cmd shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	s.close()
	s.saveFeedback()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.home)
	mux.HandleFunc("POST /translate", s.admit(s.translate))
	mux.HandleFunc("POST /execute", s.admit(s.execute))
	mux.HandleFunc("GET /admin", s.admin)
	mux.HandleFunc("GET /corpus", s.corpus)
	mux.HandleFunc("POST /api/translate", s.admit(s.apiTranslate))
	mux.HandleFunc("POST /api/store", s.apiStore)
	mux.HandleFunc("GET /api/backends", s.apiBackends)
	mux.HandleFunc("GET /api/stats", s.apiStats)
	mux.HandleFunc("POST /api/session", s.apiSessionStart)
	mux.HandleFunc("GET /api/session/{id}", s.apiSessionGet)
	mux.HandleFunc("POST /api/session/{id}/answer", s.apiSessionAnswer)
	mux.HandleFunc("GET /api/session/{id}/explain", s.apiSessionExplain)
	mux.HandleFunc("DELETE /api/session/{id}", s.apiSessionDelete)
	mux.HandleFunc("GET /dialogue", s.dialoguePage)
	mux.HandleFunc("POST /dialogue", s.dialogueStart)
	mux.HandleFunc("POST /dialogue/answer", s.dialogueAnswer)
	mux.HandleFunc("POST /dialogue/delete", s.dialogueDelete)
	return mux
}

var pageTmpl = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><title>NL2CM</title><style>
body{font-family:sans-serif;max-width:56em;margin:2em auto;padding:0 1em}
textarea{width:100%;height:4em;font-size:1em}
pre{background:#f4f4f4;padding:1em;overflow-x:auto}
.ix-lexical{background:#ffe08a}.ix-participant{background:#a8e6a1}
.ix-syntactic{background:#a9d3ff}.ix-mixed{background:#e2b7f0}
.tip{color:#a33}.sig{font-weight:bold}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.3em .6em}
</style></head><body>
<h1>NL2CM</h1>
<p>Ask a question that mixes general knowledge with the habits and
opinions of people, e.g. <em>What are the most interesting places near
Forest Hotel, Buffalo, we should visit in the fall?</em></p>
<form method="post" action="/translate">
<textarea name="q">{{.Question}}</textarea><br>
<button type="submit">Translate</button>
<button type="submit" formaction="/execute">Translate &amp; execute</button>
<label>backend: <select name="backend">
{{range .Backends}}<option value="{{.}}"{{if eq . $.Backend}} selected{{end}}>{{.}}</option>{{end}}
</select></label>
<a href="/dialogue">interactive dialogue</a> · <a href="/admin">administrator mode</a> · <a href="/corpus">question corpus</a>
</form>
{{if .Unsupported}}
<h2>Question not supported</h2>
<p class="tip">{{.Reason}}</p>
{{range .Tips}}<p class="tip">Tip: {{.}}</p>{{end}}
{{end}}
{{if .Highlight}}
<h2>Detected individual expressions</h2>
<p>{{.Highlight}}</p>
<table><tr><th>expression</th><th>individuality</th><th>uncertain</th></tr>
{{range .IXs}}<tr><td>{{.Text}}</td><td>{{.Types}}</td><td>{{.Uncertain}}</td></tr>{{end}}
</table>
{{end}}
{{if .Query}}
<h2>Final OASSIS-QL query</h2>
<pre>{{.Query}}</pre>
{{end}}
{{if .AltQuery}}
<h2>Query in the {{.Backend}} dialect</h2>
<pre>{{.AltQuery}}</pre>
{{range .AltNotes}}<p class="tip">{{.}}</p>{{end}}
{{end}}
{{if .AltError}}
<p class="tip">{{.AltError}}</p>
{{end}}
{{if .Exec}}
<h2>Execution on the (simulated) crowd</h2>
<p>{{.Exec.WhereBindings}} ontology bindings, {{.Exec.Tasks}} crowd tasks.</p>
{{range .Exec.Subclauses}}
<h3>subclause {{.Index}}</h3>
<table><tr><th></th><th>support</th><th>crowd question</th></tr>
{{range .Tasks}}<tr><td>{{if .Significant}}<span class="sig">✓</span>{{end}}</td>
<td>{{printf "%.2f" .Support}}</td><td>{{.Question}}</td></tr>{{end}}
</table>
{{end}}
<h3>significant bindings</h3>
<ul>{{range .Exec.Bindings}}<li>{{.}}</li>{{end}}</ul>
{{end}}
</body></html>`))

type ixRow struct {
	Text      string
	Types     string
	Uncertain bool
}

type execView struct {
	WhereBindings int
	Tasks         int
	Subclauses    []subclauseView
	Bindings      []string
}

type subclauseView struct {
	Index int
	Tasks []nl2cm.Task
}

type pageData struct {
	Question    string
	Unsupported bool
	Reason      string
	Tips        []string
	Highlight   template.HTML
	IXs         []ixRow
	Query       string
	Exec        *execView

	// Backend selection: the registered dialects, the selected one, and —
	// when it is not the default — its rendering (or the capability error
	// that prevented one).
	Backends []string
	Backend  string
	AltQuery string
	AltNotes []string
	AltError string
}

func (s *server) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, pageData{})
}

func (s *server) render(w http.ResponseWriter, d pageData) {
	d.Backends = nl2cm.Backends()
	if d.Backend == "" {
		d.Backend = nl2cm.DefaultBackend
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, d); err != nil {
		log.Printf("render: %v", err)
	}
}

// reqCtx bounds one request's work (translation, and for /execute the
// crowd evaluation too) by the client's context plus the per-request
// timeout.
func (s *server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// doTranslate runs one translation under the given context and, on
// success, snapshots the result for the admin page. The lock covers
// only that snapshot. Only the requested backends are emitted (the
// default OASSIS-QL rendering is always available via Result.Query),
// and any admission-queue wait the request endured is prepended to the
// trace as its own stage.
func (s *server) doTranslate(ctx context.Context, question string, backends []string) (*nl2cm.Result, error) {
	res, err := s.tr.Translate(ctx, question, nl2cm.Options{Trace: true, Backends: backends})
	if err != nil {
		return nil, err
	}
	if wait, ok := ctx.Value(queueWaitKey{}).(time.Duration); ok {
		res.Trace = append([]nl2cm.Stage{{
			Module:   nl2cm.StageQueue,
			Output:   "request queued for a translation slot",
			Duration: wait,
		}}, res.Trace...)
	}
	s.mu.Lock()
	s.last = res
	s.mu.Unlock()
	return res, nil
}

// setCacheHeader exposes how the plan cache served this translation —
// miss (filled), hit (exact), rebound (entity slots substituted), or
// bypass (cache disabled or request not cacheable) — plus the
// server-side translation wall-clock, so load generators can separate
// translation latency from transport overhead.
func setCacheHeader(w http.ResponseWriter, res *nl2cm.Result, elapsed time.Duration) {
	outcome := res.CacheOutcome
	if outcome == "" {
		outcome = "bypass"
	}
	w.Header().Set("X-Plan-Cache", outcome)
	w.Header().Set("X-Translate-Time", elapsed.String())
}

// translateError maps a translation failure to an HTTP status: timeouts
// become 504, client disconnects 499-style aborts (the response is
// unwritable anyway), everything else 500.
func translateError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful can be written.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) buildPage(question string, res *nl2cm.Result) pageData {
	d := pageData{Question: question}
	if !res.Verdict.Supported {
		d.Unsupported = true
		d.Reason = res.Verdict.Reason
		d.Tips = res.Verdict.Tips
		return d
	}
	d.Highlight = highlight(res)
	for _, x := range res.IXs {
		d.IXs = append(d.IXs, ixRow{
			Text:      x.Text(res.Graph),
			Types:     strings.Join(x.Types, "+"),
			Uncertain: x.Uncertain,
		})
	}
	d.Query = res.Query.String()
	return d
}

// highlight renders the question with IX spans wrapped in colored marks
// (the Figure 4 display).
func highlight(res *nl2cm.Result) template.HTML {
	g := res.Graph
	class := make([]string, g.Len())
	for _, x := range res.IXs {
		c := "ix-mixed"
		if len(x.Types) == 1 {
			c = "ix-" + x.Types[0]
		}
		for _, n := range x.Nodes {
			class[n] = c
		}
	}
	var b strings.Builder
	for i := range g.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		word := template.HTMLEscapeString(g.Nodes[i].Text)
		if class[i] != "" {
			fmt.Fprintf(&b, `<span class=%q>%s</span>`, class[i], word)
		} else {
			b.WriteString(word)
		}
	}
	return template.HTML(b.String())
}

func (s *server) translate(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.FormValue("q"))
	backend := strings.TrimSpace(r.FormValue("backend"))
	if backend != "" {
		if _, ok := nl2cm.LookupBackend(backend); !ok {
			http.Error(w, fmt.Sprintf("unknown backend %q", backend), http.StatusBadRequest)
			return
		}
	}
	var backends []string
	if backend != "" && backend != nl2cm.DefaultBackend {
		backends = []string{backend}
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	t0 := time.Now()
	res, err := s.doTranslate(ctx, q, backends)
	if err != nil {
		translateError(w, err)
		return
	}
	setCacheHeader(w, res, time.Since(t0))
	d := s.buildPage(q, res)
	d.Backend = backend
	if backend != "" && backend != nl2cm.DefaultBackend && res.Verdict.Supported {
		rend, err := res.Render(backend)
		if err != nil {
			// A capability error is a property of the question/dialect
			// pair, not a server fault: show it on the page.
			d.AltError = err.Error()
		} else {
			d.AltQuery = rend.Query
			d.AltNotes = rend.Notes
		}
	}
	s.render(w, d)
}

func (s *server) execute(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.FormValue("q"))
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	t0 := time.Now()
	res, err := s.doTranslate(ctx, q, nil)
	if err != nil {
		translateError(w, err)
		return
	}
	setCacheHeader(w, res, time.Since(t0))
	d := s.buildPage(q, res)
	if res.Verdict.Supported {
		out, err := s.eng.Execute(ctx, res.Query)
		if err != nil {
			// A hung or slow crowd evaluation surfaces exactly like a
			// slow translation: deadline expiry maps to 504.
			translateError(w, err)
			return
		}
		st := &engineStats{
			Question:    q,
			Tasks:       out.TasksIssued,
			CacheHits:   out.CacheHits,
			CacheMisses: out.CacheMisses,
			Elapsed:     out.Elapsed,
		}
		for _, sc := range out.Subclauses {
			st.Subclauses = append(st.Subclauses, subclauseStat{Index: sc.Index + 1, Tasks: len(sc.Tasks), Duration: sc.Duration})
		}
		s.mu.Lock()
		s.lastExec = st
		s.mu.Unlock()
		ev := &execView{WhereBindings: out.WhereBindings, Tasks: out.TasksIssued}
		for _, sc := range out.Subclauses {
			ev.Subclauses = append(ev.Subclauses, subclauseView{Index: sc.Index + 1, Tasks: sc.Tasks})
		}
		for _, b := range out.Bindings {
			var parts []string
			for v, t := range b {
				parts = append(parts, "$"+v+" = "+t.Local())
			}
			ev.Bindings = append(ev.Bindings, strings.Join(parts, ", "))
		}
		d.Exec = ev
	}
	s.render(w, d)
}

var corpusTmpl = template.Must(template.New("corpus").Parse(`<!doctype html>
<html><head><title>NL2CM corpus</title><style>
body{font-family:sans-serif;max-width:64em;margin:2em auto;padding:0 1em}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.3em .6em}
</style></head><body>
<h1>Demo question corpus</h1><p><a href="/">back</a></p>
<table><tr><th>id</th><th>domain</th><th>question</th><th>expected</th></tr>
{{range .}}<tr><td>{{.ID}}</td><td>{{.Domain}}</td>
<td><form method="post" action="/translate" style="margin:0">
<input type="hidden" name="q" value="{{.Text}}">
<button type="submit" style="all:unset;cursor:pointer;color:#06c">{{.Text}}</button>
</form></td>
<td>{{if .Supported}}translates{{else}}rejected ({{.UnsupportedCategory}}){{end}}</td></tr>{{end}}
</table></body></html>`))

func (s *server) corpus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := corpusTmpl.Execute(w, nl2cm.Corpus()); err != nil {
		log.Printf("corpus render: %v", err)
	}
}

var adminTmpl = template.Must(template.New("admin").Parse(`<!doctype html>
<html><head><title>NL2CM admin</title><style>
body{font-family:sans-serif;max-width:64em;margin:2em auto;padding:0 1em}
pre{background:#f4f4f4;padding:1em;overflow-x:auto}
</style></head><body>
<h1>Administrator mode</h1><p><a href="/">back</a></p>
{{if .Last}}
<p>Last question: <b>{{.Last.Question}}</b></p>
{{range .Last.Trace}}<h2>{{.Module}} <small>({{.Duration}})</small></h2><pre>{{.Output}}</pre>{{end}}
{{if .Last.Interactions}}<h2>Dialogue transcript</h2>
<ul>{{range .Last.Interactions}}<li><b>{{.Point}}</b>: {{.Question}} → {{.Answer}}</li>{{end}}</ul>{{end}}
{{if .Annotated}}<h2>Annotated query (triple provenance)</h2>
<pre>{{.Annotated}}</pre>{{end}}
{{if .Last.Uncovered}}<h2>Uncovered words</h2>
<p>Content words no emitted triple derives from:</p>
<ul>{{range .Last.Uncovered}}<li><b>{{.Text}}</b> (bytes {{.Span.Start}}–{{.Span.End}})</li>{{end}}</ul>
{{range .Last.CoverageTips}}<p>{{.}}</p>{{end}}{{end}}
{{else}}<p>No translation yet.</p>{{end}}
<h2>IX pattern matches</h2>
{{if .IXCounts}}
<table><tr><th>pattern</th><th>matches</th></tr>
{{range .IXCounts}}<tr><td>{{.Pattern}}</td><td>{{.Count}}</td></tr>{{end}}
</table>
<h3>recent translations</h3>
{{range .IXRecent}}<p><b>{{.Question}}</b></p>
{{if .Matches}}<table><tr><th>pattern</th><th>anchor</th><th>matched span</th><th>bytes</th></tr>
{{range .Matches}}<tr><td>{{.Pattern}}</td><td>{{.Anchor}}</td><td>&ldquo;{{.Text}}&rdquo;</td><td>{{.Span.Start}}–{{.Span.End}}</td></tr>{{end}}
</table>{{else}}<p>no pattern matched</p>{{end}}
{{end}}
{{else}}<p>No matches recorded yet.</p>{{end}}
{{if .Exec}}
<h2>Crowd Execution <small>({{.Exec.Elapsed}})</small></h2>
<p>Last executed: <b>{{.Exec.Question}}</b></p>
<p>{{.Exec.Tasks}} crowd tasks; support cache: {{.Exec.CacheHits}} hits,
{{.Exec.CacheMisses}} misses this run ({{.CacheHits}} / {{.CacheMisses}} engine lifetime).</p>
<table><tr><th>subclause</th><th>tasks</th><th>wall-clock</th></tr>
{{range .Exec.Subclauses}}<tr><td>SATISFYING {{.Index}}</td><td>{{.Tasks}}</td><td>{{.Duration}}</td></tr>{{end}}
</table>
{{end}}
<h2>Crowd engine</h2>
{{with .Engine}}
<p>{{.Executions}} executions · {{.TasksIssued}} crowd tasks ·
support cache {{.SupportCacheHits}} hits / {{.SupportCacheMisses}} misses ·
{{.CrowdSize}}-member crowd{{if .SampleSize}} (sample {{.SampleSize}}){{end}}.</p>
{{with .Scale}}
<p>Streaming executor: {{.Workers}} workers over {{.Population}} members ·
{{.TasksDecided}} tasks decided ({{.EarlyDecided}} early, {{.FullySampled}} fully sampled) ·
{{.MemberAnswers}} member answers asked, {{.AnswersSaved}} saved by early termination ·
{{.BatchesDispatched}} batches, queue high water {{.QueueHighWater}} ·
sampling states: {{.States}} cached, {{.StateHits}} hits / {{.StateMisses}} misses.</p>
{{end}}
{{end}}
<h2>Plan cache</h2>
{{with .PlanCache}}
<p>{{.Entries}} cached shapes · {{.Hits}} hits ({{.Rebinds}} by entity
re-binding) · {{.Misses}} misses · {{.Waits}} coalesced onto another
request's fill · {{.Evictions}} evictions.</p>
{{else}}<p>Plan cache disabled (-plan-cache 0).</p>{{end}}
<h2>Admission control</h2>
{{with .Admission}}
<p>{{.Inflight}}/{{.MaxInflight}} slots in use, {{.Queued}}/{{.QueueDepth}} queued ·
{{.Admitted}} admitted, {{.Rejected}} shed (429) · avg queue wait {{.AvgWait}}.</p>
{{end}}
<h2>Dialogue sessions</h2>
{{with .Sessions}}
<p>{{.Live}} live · {{.Started}} started — {{.Completed}} completed,
{{.Failed}} failed, {{.Expired}} expired, {{.Evicted}} evicted.</p>
<table><tr><th>interaction point</th><th>asked</th><th>answered</th>
<th>timed out</th><th>aborted</th><th>avg wait</th></tr>
{{range .Points}}<tr><td>{{.Point}}</td><td>{{.Asked}}</td><td>{{.Answered}}</td>
<td>{{.TimedOut}}</td><td>{{.Aborted}}</td><td>{{.AvgWait}}</td></tr>{{end}}
</table>
{{end}}
</body></html>`))

// adminData feeds the admin template: the last translation trace, the
// last execution's engine metrics, and the engine-lifetime cache
// counters.
type adminData struct {
	Last        *nl2cm.Result
	Annotated   string
	Exec        *engineStats
	Engine      nl2cm.EngineStats
	CacheHits   uint64
	CacheMisses uint64
	Sessions    session.Metrics
	IXCounts    []ix.PatternCount
	IXRecent    []ix.TranslationMatches
	PlanCache   *nl2cm.PlanCacheStats
	Admission   admissionStats
}

func (s *server) admin(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	d := adminData{Last: s.last, Exec: s.lastExec}
	s.mu.Unlock()
	if d.Last != nil {
		d.Annotated = d.Last.AnnotatedQuery()
	}
	d.CacheHits, d.CacheMisses = s.eng.CacheStats()
	d.Engine = s.eng.Stats()
	if s.tr.Cache != nil {
		st := s.tr.Cache.Stats()
		d.PlanCache = &st
	}
	d.Admission = s.adm.stats()
	d.Sessions = s.sess.Metrics()
	d.IXCounts = s.ixStats.Counts()
	d.IXRecent = s.ixStats.Recent()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := adminTmpl.Execute(w, d); err != nil {
		log.Printf("admin render: %v", err)
	}
}

type apiRequest struct {
	Question string `json:"question"`
	// Backend names the dialect to render the query in; empty means the
	// default (OASSIS-QL). The rendering lands in apiResponse.Rendering
	// with its per-clause provenance; Query always stays OASSIS-QL.
	Backend string `json:"backend,omitempty"`
}

type apiResponse struct {
	Supported bool             `json:"supported"`
	Reason    string           `json:"reason,omitempty"`
	Tips      []string         `json:"tips,omitempty"`
	Query     string           `json:"query,omitempty"`
	IXs       []ixRow          `json:"ixs,omitempty"`
	Rendering *nl2cm.Rendering `json:"rendering,omitempty"`
}

func (s *server) apiTranslate(w http.ResponseWriter, r *http.Request) {
	var req apiRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	backend := strings.TrimSpace(req.Backend)
	if backend == "" {
		backend = nl2cm.DefaultBackend
	}
	if _, ok := nl2cm.LookupBackend(backend); !ok {
		http.Error(w, fmt.Sprintf("unknown backend %q (have %s)",
			backend, strings.Join(nl2cm.Backends(), ", ")), http.StatusBadRequest)
		return
	}
	var backends []string
	if backend != nl2cm.DefaultBackend {
		backends = []string{backend}
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	t0 := time.Now()
	res, err := s.doTranslate(ctx, req.Question, backends)
	if err != nil {
		translateError(w, err)
		return
	}
	setCacheHeader(w, res, time.Since(t0))
	resp := apiResponse{Supported: res.Verdict.Supported}
	if !res.Verdict.Supported {
		resp.Reason = res.Verdict.Reason
		resp.Tips = res.Verdict.Tips
	} else {
		resp.Query = res.Query.String()
		for _, x := range res.IXs {
			resp.IXs = append(resp.IXs, ixRow{
				Text:      x.Text(res.Graph),
				Types:     strings.Join(x.Types, "+"),
				Uncertain: x.Uncertain,
			})
		}
		rend, err := res.Render(backend)
		if err != nil {
			// The translation succeeded; only the requested dialect cannot
			// express it. 422 keeps that distinct from a bad request.
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp.Rendering = rend
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("api encode: %v", err)
	}
}

// backendInfo is one /api/backends entry.
type backendInfo struct {
	Name    string            `json:"name"`
	Default bool              `json:"default"`
	Caps    nl2cm.BackendCaps `json:"caps"`
}

// statsResponse is the /api/stats payload: the serving-side counters a
// load generator or monitor scrapes between runs.
type statsResponse struct {
	PlanCache *nl2cm.PlanCacheStats `json:"plan_cache,omitempty"`
	Admission admissionStats        `json:"admission"`
	Sessions  nl2cm.SessionMetrics  `json:"sessions"`
	// Crowd is the execution engine's lifetime counters: executions,
	// tasks asked, support-cache hits/misses, and — with -crowd-scale —
	// the streaming executor's queue and early-termination metrics.
	Crowd nl2cm.EngineStats `json:"crowd"`
	// Store describes the knowledge store's current published snapshot.
	Store storeStats `json:"store"`
}

// storeStats is the /api/stats knowledge-store section: the published
// snapshot's epoch, its total triple count, and the per-shard sizes
// (hash-partitioned by subject, so skew here means subject hot spots).
type storeStats struct {
	Epoch   uint64 `json:"epoch"`
	Triples int    `json:"triples"`
	Shards  []int  `json:"shards"`
}

// apiStats reports plan-cache, admission, session, crowd-engine and
// knowledge-store counters as JSON.
func (s *server) apiStats(w http.ResponseWriter, r *http.Request) {
	sn := s.tr.Onto.Snapshot()
	resp := statsResponse{
		Admission: s.adm.stats(),
		Sessions:  s.sess.Metrics(),
		Crowd:     s.eng.Stats(),
		Store: storeStats{
			Epoch:   sn.Epoch(),
			Triples: sn.Len(),
			Shards:  sn.ShardSizes(),
		},
	}
	if s.tr.Cache != nil {
		st := s.tr.Cache.Stats()
		resp.PlanCache = &st
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("api encode: %v", err)
	}
}

// storeRequest is the POST /api/store payload: N-Triples text to delete
// and insert as one atomic batch (deletes apply first). An invalid line
// or a non-ground insert rejects the whole batch.
type storeRequest struct {
	Insert string `json:"insert,omitempty"`
	Delete string `json:"delete,omitempty"`
}

// storeResponse reports what one batch did and the epoch it published.
type storeResponse struct {
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	Epoch   uint64 `json:"epoch"`
}

// apiStore applies an insert/delete batch to the shared knowledge
// store. The new epoch is visible to every subsequent request: cached
// plans from older epochs become unreachable and the ontology's label
// index re-derives, so an inserted entity resolves on the next query.
func (s *server) apiStore(w http.ResponseWriter, r *http.Request) {
	var req storeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var batch nl2cm.StoreBatch
	var err error
	if req.Delete != "" {
		if batch.Delete, err = nl2cm.ParseTriples(strings.NewReader(req.Delete)); err != nil {
			http.Error(w, "delete: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.Insert != "" {
		if batch.Insert, err = nl2cm.ParseTriples(strings.NewReader(req.Insert)); err != nil {
			http.Error(w, "insert: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if len(batch.Insert) == 0 && len(batch.Delete) == 0 {
		http.Error(w, "empty batch: provide insert and/or delete N-Triples", http.StatusBadRequest)
		return
	}
	added, removed, epoch, err := s.tr.Onto.Store.Apply(batch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(storeResponse{Added: added, Removed: removed, Epoch: epoch}); err != nil {
		log.Printf("api encode: %v", err)
	}
}

// apiBackends lists the registered backend dialects with their
// capability flags, the default backend first.
func (s *server) apiBackends(w http.ResponseWriter, r *http.Request) {
	var out []backendInfo
	for _, name := range nl2cm.Backends() {
		b, _ := nl2cm.LookupBackend(name)
		out = append(out, backendInfo{
			Name:    name,
			Default: name == nl2cm.DefaultBackend,
			Caps:    b.Caps(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("api encode: %v", err)
	}
}
