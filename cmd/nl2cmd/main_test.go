package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.timeout = 0
	t.Cleanup(s.sess.Close)
	return s
}

const question = "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?"

func TestHomePage(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.home(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "<form") || !strings.Contains(body, "NL2CM") {
		t.Errorf("home page lacks the question form:\n%s", body)
	}
}

func TestHomeNotFoundForOtherPaths(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.home(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

func postForm(t *testing.T, s *server, handler func(http.ResponseWriter, *http.Request), q string) *httptest.ResponseRecorder {
	t.Helper()
	form := url.Values{"q": {q}}
	req := httptest.NewRequest("POST", "/translate", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	handler(rec, req)
	return rec
}

func TestTranslateEndpoint(t *testing.T) {
	s := testServer(t)
	rec := postForm(t, s, s.translate, question)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"SELECT VARIABLES",
		"Forest_Hotel,_Buffalo,_NY",
		"ix-lexical",  // the Figure-4 highlighting
		"interesting", // the detected IX
	} {
		if !strings.Contains(body, want) {
			t.Errorf("translate page missing %q", want)
		}
	}
}

func TestTranslateEndpointUnsupported(t *testing.T) {
	s := testServer(t)
	rec := postForm(t, s, s.translate, "How should I store coffee?")
	body := rec.Body.String()
	if !strings.Contains(body, "not supported") {
		t.Errorf("unsupported question page lacks the warning:\n%s", body)
	}
	if !strings.Contains(body, "At what container should I store coffee?") {
		t.Error("rephrasing tip missing")
	}
}

func TestExecuteEndpoint(t *testing.T) {
	s := testServer(t)
	rec := postForm(t, s, s.execute, question)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"Delaware Park", "crowd tasks", "significant bindings"} {
		if !strings.Contains(body, want) {
			t.Errorf("execute page missing %q", want)
		}
	}
}

func TestAdminPage(t *testing.T) {
	s := testServer(t)
	// Before any translation: empty admin page.
	rec := httptest.NewRecorder()
	s.admin(rec, httptest.NewRequest("GET", "/admin", nil))
	if !strings.Contains(rec.Body.String(), "No translation yet") {
		t.Error("empty admin page wrong")
	}
	// After a translation: module trace visible.
	postForm(t, s, s.translate, question)
	rec = httptest.NewRecorder()
	s.admin(rec, httptest.NewRequest("GET", "/admin", nil))
	body := rec.Body.String()
	for _, want := range []string{"NL Parser", "IX Detector", "Query Composition"} {
		if !strings.Contains(body, want) {
			t.Errorf("admin page missing module %q", want)
		}
	}
}

func TestAPITranslate(t *testing.T) {
	s := testServer(t)
	payload := `{"question": "Which hotel in Vegas has the best thrill ride?"}`
	req := httptest.NewRequest("POST", "/api/translate", strings.NewReader(payload))
	rec := httptest.NewRecorder()
	s.apiTranslate(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp apiResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Supported || !strings.Contains(resp.Query, "SATISFYING") {
		t.Errorf("api response = %+v", resp)
	}
	if len(resp.IXs) == 0 {
		t.Error("api response lists no IXs")
	}
}

func TestAPITranslateUnsupported(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/api/translate", strings.NewReader(`{"question": "Why is the sky blue?"}`))
	rec := httptest.NewRecorder()
	s.apiTranslate(rec, req)
	var resp apiResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Supported || resp.Reason == "" || len(resp.Tips) == 0 {
		t.Errorf("api response = %+v", resp)
	}
}

// TestAPIBackends checks the backend listing: the four shipped dialects
// with the default (OASSIS-QL) first, capability flags included.
func TestAPIBackends(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.apiBackends(rec, httptest.NewRequest("GET", "/api/backends", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out []backendInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, b := range out {
		names = append(names, b.Name)
	}
	want := []string{"oassisql", "cypher", "mongodb", "sql"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("backends = %v, want %v", names, want)
	}
	if !out[0].Default || !out[0].Caps.Crowd {
		t.Errorf("default backend entry = %+v", out[0])
	}
	for _, b := range out[1:] {
		if b.Default || b.Caps.Crowd {
			t.Errorf("backend %s unexpectedly default or crowd-capable", b.Name)
		}
	}
}

// TestAPITranslateBackend requests the SQL rendering alongside the
// OASSIS-QL query and checks its per-clause provenance survived the trip.
func TestAPITranslateBackend(t *testing.T) {
	s := testServer(t)
	payload := `{"question": "` + question + `", "backend": "sql"}`
	req := httptest.NewRequest("POST", "/api/translate", strings.NewReader(payload))
	rec := httptest.NewRecorder()
	s.apiTranslate(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp apiResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Query, "SELECT VARIABLES") {
		t.Errorf("OASSIS-QL query missing: %q", resp.Query)
	}
	r := resp.Rendering
	if r == nil || r.Backend != "sql" {
		t.Fatalf("rendering = %+v", r)
	}
	if !strings.Contains(r.Query, "FROM triples AS t0") {
		t.Errorf("sql rendering = %q", r.Query)
	}
	if len(r.Clauses) == 0 {
		t.Fatal("rendering has no clause provenance")
	}
	for _, c := range r.Clauses {
		if c.Source == "" || len(c.Tokens) == 0 {
			t.Errorf("clause %q lost its provenance: %+v", c.Fragment, c)
		}
	}
	if len(r.Notes) == 0 {
		t.Error("crowd clauses dropped without a note")
	}
}

// TestAPITranslateUnknownBackend maps a bad backend name to 400 before
// any translation work happens.
func TestAPITranslateUnknownBackend(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/api/translate",
		strings.NewReader(`{"question": "`+question+`", "backend": "oracle"}`))
	rec := httptest.NewRecorder()
	s.apiTranslate(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

// TestTranslateFormBackend drives the HTML form with a backend selection
// and expects the extra dialect block on the page.
func TestTranslateFormBackend(t *testing.T) {
	s := testServer(t)
	form := url.Values{"q": {question}, "backend": {"cypher"}}
	req := httptest.NewRequest("POST", "/translate", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.translate(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"Query in the cypher dialect", "MATCH", "SELECT VARIABLES"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestAPITranslateBadJSON(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/api/translate", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	s.apiTranslate(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

func TestHighlightEscapesHTML(t *testing.T) {
	s := testServer(t)
	rec := postForm(t, s, s.translate, `Where do you visit in <Buffalo>?`)
	body := rec.Body.String()
	if strings.Contains(body, "<Buffalo>") {
		t.Error("unescaped user input in page")
	}
}

func TestCorpusPage(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.corpus(rec, httptest.NewRequest("GET", "/corpus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"travel-01", "Forest Hotel", "rejected (descriptive)"} {
		if !strings.Contains(body, want) {
			t.Errorf("corpus page missing %q", want)
		}
	}
}

// TestAPITranslateConcurrent drives parallel POST /api/translate
// requests through the real mux: with the translation lock gone, all of
// them must complete (under -race this also checks the shared
// Translator and admin snapshot).
func TestAPITranslateConcurrent(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	const workers = 8
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/api/translate", "application/json",
				strings.NewReader(`{"question": "`+question+`"}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out apiResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || !out.Supported {
				errs <- fmt.Errorf("status %d, supported %v", resp.StatusCode, out.Supported)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// The admin snapshot survived the concurrent updates.
	rec := httptest.NewRecorder()
	s.admin(rec, httptest.NewRequest("GET", "/admin", nil))
	if !strings.Contains(rec.Body.String(), "NL Parser") {
		t.Error("admin page lost the trace after concurrent requests")
	}
}

// TestAPITranslateCancelled verifies that a request whose context is
// already cancelled (client gone) does not produce a 200 and is mapped
// by translateError, exercising r.Context() propagation end to end.
func TestAPITranslateCancelled(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/api/translate",
		strings.NewReader(`{"question": "`+question+`"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.apiTranslate(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusServiceUnavailable)
	}
}

// TestTranslateTimeout bounds a translation with a tiny server timeout;
// the deadline maps to 504.
func TestTranslateTimeout(t *testing.T) {
	s := testServer(t)
	s.timeout = time.Nanosecond
	rec := postForm(t, s, s.translate, question)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusGatewayTimeout)
	}
}

// The /api/stats crowd section: engine-lifetime counters, plus the
// streaming-executor metrics when -crowd-scale is on.
func TestAPIStatsCrowdSection(t *testing.T) {
	s, err := newServer(serverConfig{crowdSize: 400, crowdSeed: 11, crowdScale: true})
	if err != nil {
		t.Fatal(err)
	}
	s.timeout = 0
	t.Cleanup(s.close)
	if s.eng.Scale == nil {
		t.Fatal("crowdScale did not attach a scale executor")
	}

	postForm(t, s, s.execute, question)

	rec := httptest.NewRecorder()
	s.apiStats(rec, httptest.NewRequest("GET", "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp statsResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Crowd.Executions != 1 || resp.Crowd.TasksIssued == 0 {
		t.Errorf("crowd stats = %+v, want one execution with tasks", resp.Crowd)
	}
	if resp.Crowd.CrowdSize != 400 {
		t.Errorf("crowd size = %d, want 400", resp.Crowd.CrowdSize)
	}
	if resp.Crowd.Scale == nil {
		t.Fatal("crowd stats lack the scale section")
	}
	if resp.Crowd.Scale.TasksDecided == 0 || resp.Crowd.Scale.MemberAnswers == 0 {
		t.Errorf("scale stats = %+v, want decided tasks and member answers", *resp.Crowd.Scale)
	}
	if resp.Crowd.Scale.Population != 400 {
		t.Errorf("scale population = %d, want 400", resp.Crowd.Scale.Population)
	}

	// The admin page renders the same counters.
	rec = httptest.NewRecorder()
	s.admin(rec, httptest.NewRequest("GET", "/admin", nil))
	if body := rec.Body.String(); !strings.Contains(body, "Crowd engine") || !strings.Contains(body, "Streaming executor") {
		t.Error("admin page lacks the crowd engine / streaming executor sections")
	}
}

// Without -crowd-scale the crowd section still reports the synchronous
// engine's counters (and no scale subsection).
func TestAPIStatsCrowdWithoutScale(t *testing.T) {
	s := testServer(t)
	postForm(t, s, s.execute, question)
	rec := httptest.NewRecorder()
	s.apiStats(rec, httptest.NewRequest("GET", "/api/stats", nil))
	var resp statsResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Crowd.Scale != nil {
		t.Error("scale section present without -crowd-scale")
	}
	if resp.Crowd.Executions != 1 || resp.Crowd.SupportCacheMisses == 0 {
		t.Errorf("crowd stats = %+v", resp.Crowd)
	}
}
