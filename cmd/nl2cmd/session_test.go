package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nl2cm/internal/session"
)

const buffaloQ = "Where do you visit in Buffalo?"

// sessionServer is a testServer with session knobs suited to driving
// dialogues over HTTP.
func sessionServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.sess.Close)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var r *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = bytes.NewReader(data)
	} else {
		r = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeSnapshot(t *testing.T, data []byte) session.Snapshot {
	t.Helper()
	var snap session.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("decoding snapshot %s: %v", data, err)
	}
	return snap
}

// wireAnswer builds the answer a client would post for the question:
// accept everything, pick the choice whose label or description contains
// pick (first otherwise), keep numeric defaults.
func wireAnswer(q *session.Question, pick string) session.Answer {
	var a session.Answer
	switch q.Kind {
	case session.KindIXVerify:
		a.Accept = make([]bool, len(q.Spans))
		for i := range a.Accept {
			a.Accept[i] = true
		}
	case session.KindProjection:
		a.Accept = make([]bool, len(q.Vars))
		for i := range a.Accept {
			a.Accept[i] = true
		}
	case session.KindChoice:
		c := 0
		if pick != "" {
			for i, opt := range q.Choices {
				if strings.Contains(opt.Label, pick) || strings.Contains(opt.Description, pick) {
					c = i
					break
				}
			}
		}
		a.Choice = &c
	case session.KindNumber:
		n := q.Default
		a.Number = &n
	}
	return a
}

// driveHTTP runs a full dialogue over the REST endpoints, answering
// every question, and returns the terminal snapshot.
func driveHTTP(t *testing.T, ts *httptest.Server, question, pick string) session.Snapshot {
	t.Helper()
	resp, body := doJSON(t, "POST", ts.URL+"/api/session", sessionStartRequest{Question: question})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start: status %d: %s", resp.StatusCode, body)
	}
	snap := decodeSnapshot(t, body)
	deadline := time.Now().Add(30 * time.Second)
	for !snap.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("dialogue did not finish; stuck at %+v", snap)
		}
		if snap.Question == nil {
			// The pipeline is computing; poll.
			resp, body = doJSON(t, "GET", ts.URL+"/api/session/"+snap.ID, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("poll: status %d: %s", resp.StatusCode, body)
			}
			snap = decodeSnapshot(t, body)
			continue
		}
		resp, body = doJSON(t, "POST", ts.URL+"/api/session/"+snap.ID+"/answer",
			sessionAnswerRequest{Question: snap.Question.ID, Answer: wireAnswer(snap.Question, pick)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer: status %d: %s", resp.StatusCode, body)
		}
		snap = decodeSnapshot(t, body)
	}
	return snap
}

// TestSessionDialogueOverHTTP drives the paper's Figure 3–6 flow through
// the REST protocol: the Buffalo disambiguation answered with the
// Illinois reading must surface in the final query.
func TestSessionDialogueOverHTTP(t *testing.T) {
	_, ts := sessionServer(t, serverConfig{})
	snap := driveHTTP(t, ts, buffaloQ, "Illinois")
	if snap.State != session.StateDone {
		t.Fatalf("state = %s (error %q)", snap.State, snap.Error)
	}
	if !strings.Contains(snap.Query, "Buffalo,_IL") {
		t.Errorf("query does not use the chosen entity:\n%s", snap.Query)
	}
	if len(snap.Turns) == 0 {
		t.Fatal("no dialogue turns recorded")
	}
	for _, turn := range snap.Turns {
		if turn.Source != "user" {
			t.Errorf("turn %q answered by %q, want user", turn.Question.Prompt, turn.Source)
		}
	}
}

// TestSessionFeedbackPersistsAcrossRestart checks the ISSUE acceptance
// path: an accepted disambiguation lands in the feedback store, survives
// an atomic save + daemon restart, and is loaded by the next server.
func TestSessionFeedbackPersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.json")

	s1, ts1 := sessionServer(t, serverConfig{feedback: path})
	snap := driveHTTP(t, ts1, buffaloQ, "Illinois")
	if snap.State != session.StateDone {
		t.Fatalf("state = %s (error %q)", snap.State, snap.Error)
	}
	s1.saveFeedback() // what shutdown does

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]map[string]int
	if err := json.Unmarshal(data, &counts); err != nil {
		t.Fatalf("persisted store is not valid JSON: %v\n%s", err, data)
	}
	found := 0
	for phrase, m := range counts {
		for entity, n := range m {
			if strings.Contains(entity, "Buffalo,_IL") {
				found = n
				_ = phrase
			}
		}
	}
	if found == 0 {
		t.Fatalf("chosen entity missing from persisted store:\n%s", data)
	}

	// "Restart": a fresh server over the same path must load the counts.
	s2, err := newServer(serverConfig{feedback: path})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.sess.Close)
	loaded, err := json.Marshal(s2.tr.Generator.Feedback)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(loaded), "Buffalo,_IL") {
		t.Errorf("restarted server did not load the feedback store: %s", loaded)
	}
}

// TestSessionEndpointErrors checks the error→status mapping of the REST
// protocol.
func TestSessionEndpointErrors(t *testing.T) {
	_, ts := sessionServer(t, serverConfig{})

	// Unknown session ids.
	for _, tc := range []struct{ method, url string }{
		{"GET", ts.URL + "/api/session/nope"},
		{"POST", ts.URL + "/api/session/nope/answer"},
		{"DELETE", ts.URL + "/api/session/nope"},
	} {
		resp, body := doJSON(t, tc.method, tc.url, sessionAnswerRequest{})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404 (%s)", tc.method, tc.url, resp.StatusCode, body)
		}
	}

	// Malformed and empty starts.
	resp, _ := doJSON(t, "POST", ts.URL+"/api/session", sessionStartRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question: status %d, want 400", resp.StatusCode)
	}

	// A live session: wrong question id is a conflict, wrong shape a 400.
	resp, body := doJSON(t, "POST", ts.URL+"/api/session", sessionStartRequest{Question: buffaloQ})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start: status %d: %s", resp.StatusCode, body)
	}
	snap := decodeSnapshot(t, body)
	if snap.Question == nil {
		t.Fatalf("no pending question: %s", body)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/api/session/"+snap.ID+"/answer",
		sessionAnswerRequest{Question: snap.Question.ID + 41, Answer: wireAnswer(snap.Question, "")})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale question id: status %d, want 409", resp.StatusCode)
	}
	choice := 0
	resp, _ = doJSON(t, "POST", ts.URL+"/api/session/"+snap.ID+"/answer",
		sessionAnswerRequest{Question: snap.Question.ID, Answer: session.Answer{Choice: &choice}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shape mismatch: status %d, want 400", resp.StatusCode)
	}

	// Deleting ends it; the id is gone.
	resp, _ = doJSON(t, "DELETE", ts.URL+"/api/session/"+snap.ID, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/api/session/"+snap.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted session still answers: status %d", resp.StatusCode)
	}
}

// TestDialoguePage smoke-tests the server-rendered dialogue UI: start
// form, form-post start, pending question rendering, and abort.
func TestDialoguePage(t *testing.T) {
	_, ts := sessionServer(t, serverConfig{})
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	resp, err := client.Get(ts.URL + "/dialogue")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "Start dialogue") {
		t.Fatalf("dialogue form: status %d\n%s", resp.StatusCode, buf.String())
	}

	resp, err = client.PostForm(ts.URL+"/dialogue", map[string][]string{"q": {buffaloQ}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("start: status %d, want 303", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "/dialogue?id=") {
		t.Fatalf("redirect = %q", loc)
	}

	resp, err = client.Get(ts.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	if !strings.Contains(body, "verify") || !strings.Contains(body, "Answer") {
		t.Errorf("session page lacks the pending question:\n%s", body)
	}

	id := strings.TrimPrefix(loc, "/dialogue?id=")
	resp, err = client.PostForm(ts.URL+"/dialogue/delete", map[string][]string{"id": {id}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Errorf("delete: status %d, want 303", resp.StatusCode)
	}
}

// TestAdminPageShowsSessionMetrics verifies the admin page's dialogue
// section reflects a finished session.
func TestAdminPageShowsSessionMetrics(t *testing.T) {
	s, ts := sessionServer(t, serverConfig{})
	driveHTTP(t, ts, buffaloQ, "Illinois")
	rec := httptest.NewRecorder()
	s.admin(rec, httptest.NewRequest("GET", "/admin", nil))
	body := rec.Body.String()
	for _, want := range []string{"Dialogue sessions", "1 completed", "disambiguation"} {
		if !strings.Contains(body, want) {
			t.Errorf("admin page missing %q:\n%s", want, body)
		}
	}
}

// TestSessionExplainEndpoint checks the provenance view of a finished
// dialogue: the annotated query carries source comments, and every
// provenance record cites at least one byte span of the question.
func TestSessionExplainEndpoint(t *testing.T) {
	_, ts := sessionServer(t, serverConfig{})

	resp, _ := doJSON(t, "GET", ts.URL+"/api/session/nope/explain", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}

	// A session parked on its first question has no Result yet.
	resp, body := doJSON(t, "POST", ts.URL+"/api/session", sessionStartRequest{Question: buffaloQ})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start: status %d: %s", resp.StatusCode, body)
	}
	pending := decodeSnapshot(t, body)
	resp, _ = doJSON(t, "GET", ts.URL+"/api/session/"+pending.ID+"/explain", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unfinished session: status %d, want 409", resp.StatusCode)
	}

	snap := driveHTTP(t, ts, buffaloQ, "New York")
	if snap.State != session.StateDone {
		t.Fatalf("state = %s (error %q)", snap.State, snap.Error)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/api/session/"+snap.ID+"/explain", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	var ex explainResponse
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatalf("decoding explain response %s: %v", body, err)
	}
	if !ex.Supported || ex.Question != buffaloQ || ex.Query == "" {
		t.Fatalf("explain = %+v, want supported with query", ex)
	}
	if !strings.Contains(ex.Annotated, "# from: ") {
		t.Errorf("annotated query lacks source comments:\n%s", ex.Annotated)
	}
	if len(ex.Provenance) == 0 {
		t.Fatal("no provenance records")
	}
	for _, rec := range ex.Provenance {
		if len(rec.Spans) == 0 || rec.Text == "" {
			t.Errorf("record %q has no source span", rec.Triple)
			continue
		}
		for _, sp := range rec.Spans {
			if sp.Start < 0 || sp.End > len(buffaloQ) || sp.End <= sp.Start {
				t.Errorf("record %q span [%d,%d) outside question", rec.Triple, sp.Start, sp.End)
			}
		}
	}
	// The Buffalo question has no general triples, so no decisions; the
	// running example does — its explain view must report them.
	snap = driveHTTP(t, ts, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?", "")
	if snap.State != session.StateDone {
		t.Fatalf("state = %s (error %q)", snap.State, snap.Error)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/api/session/"+snap.ID+"/explain", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Decisions) == 0 {
		t.Error("no compose decisions reported for the running example")
	}
	kept := 0
	for _, d := range ex.Decisions {
		if d.Kept {
			kept++
		}
	}
	if kept == 0 {
		t.Errorf("every general triple dropped: %+v", ex.Decisions)
	}
}

// TestDialoguePageHighlightsSpans checks the Figure-4 rendering of the
// dialogue UI: the ix-verify question shows the question with colored
// byte-span marks and each expression's exact source phrase.
func TestDialoguePageHighlightsSpans(t *testing.T) {
	_, ts := sessionServer(t, serverConfig{})
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(ts.URL+"/dialogue", map[string][]string{"q": {buffaloQ}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	loc := resp.Header.Get("Location")
	resp, err = client.Get(ts.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{`<mark class="ix-`, "source phrase", "bytes "} {
		if !strings.Contains(body, want) {
			t.Errorf("ix-verify page missing %q:\n%s", want, body)
		}
	}
}

// TestAdminPageShowsIXPatternStats checks that the administrator page
// tallies per-pattern IX matches and quotes the matched span text of
// recent translations.
func TestAdminPageShowsIXPatternStats(t *testing.T) {
	s, ts := sessionServer(t, serverConfig{})
	driveHTTP(t, ts, buffaloQ, "New York")
	rec := httptest.NewRecorder()
	s.admin(rec, httptest.NewRequest("GET", "/admin", nil))
	body := rec.Body.String()
	for _, want := range []string{"IX pattern matches", buffaloQ, "visit"} {
		if !strings.Contains(body, want) {
			t.Errorf("admin page missing %q:\n%s", want, body)
		}
	}
	if counts := s.ixStats.Counts(); len(counts) == 0 || counts[0].Count < 1 {
		t.Errorf("no pattern counts recorded: %+v", counts)
	}
	recent := s.ixStats.Recent()
	if len(recent) == 0 || recent[0].Question != buffaloQ {
		t.Fatalf("recent translations = %+v", recent)
	}
	for _, m := range recent[0].Matches {
		if m.Text == "" || !strings.Contains(buffaloQ, strings.ReplaceAll(m.Text, " ... ", " ")) &&
			!strings.Contains(buffaloQ, m.Text) {
			t.Errorf("match text %q not quoted from the question", m.Text)
		}
	}
}
