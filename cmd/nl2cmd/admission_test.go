package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestAdmissionShedsBeyondQueueDepth: with every slot held and the
// queue full, acquire must refuse immediately instead of blocking.
func TestAdmissionShedsBeyondQueueDepth(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()

	_, release, ok := a.acquire(ctx)
	if !ok {
		t.Fatal("first acquire should get the slot")
	}

	// Fill the one queue position with a waiter.
	queued := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(queued)
		_, rel, ok := a.acquire(ctx)
		if !ok {
			t.Error("queued acquire should eventually succeed")
			return
		}
		rel()
	}()
	<-queued
	// Give the goroutine time to land in the queue (queued gauge = 1).
	deadline := time.Now().Add(time.Second)
	for a.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, _, ok := a.acquire(ctx); ok {
		t.Fatal("acquire beyond queue depth should be shed")
	}
	if st := a.stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	release() // frees the slot; the queued goroutine takes it
	wg.Wait()
	st := a.stats()
	if st.Admitted != 2 {
		t.Errorf("admitted = %d, want 2", st.Admitted)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("gauges not drained: %+v", st)
	}
}

// TestAdmissionRecordsQueueWait: a request that had to queue reports a
// positive wait.
func TestAdmissionRecordsQueueWait(t *testing.T) {
	a := newAdmission(1, 4)
	_, release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire failed")
	}
	done := make(chan time.Duration, 1)
	go func() {
		wait, rel, ok := a.acquire(context.Background())
		if !ok {
			t.Error("queued acquire failed")
			done <- 0
			return
		}
		rel()
		done <- wait
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	if wait := <-done; wait <= 0 {
		t.Errorf("queue wait = %v, want > 0", wait)
	}
}

// TestAdmitMiddlewareReturns429: the HTTP wrapper sheds with 429 and a
// Retry-After header once slots and queue are exhausted.
func TestAdmitMiddlewareReturns429(t *testing.T) {
	s := testServer(t)
	s.adm = newAdmission(1, 0)

	hold := make(chan struct{})
	entered := make(chan struct{})
	blocked := s.admit(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-hold
	})

	go func() {
		rec := httptest.NewRecorder()
		blocked(rec, httptest.NewRequest("POST", "/translate", nil))
	}()
	<-entered

	rec := httptest.NewRecorder()
	s.admit(func(http.ResponseWriter, *http.Request) {
		t.Error("handler ran despite exhausted admission")
	})(rec, httptest.NewRequest("POST", "/translate", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	close(hold)
}

// TestPlanCacheHeader: the daemon reports how the plan cache served
// each translation; a repeat of the same question must be a hit.
func TestPlanCacheHeader(t *testing.T) {
	s, err := newServer(serverConfig{planCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	s.timeout = 0
	t.Cleanup(s.sess.Close)

	first := postForm(t, s, s.translate, question)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d", first.Code)
	}
	if got := first.Header().Get("X-Plan-Cache"); got != "miss" {
		t.Errorf("first translation X-Plan-Cache = %q, want miss", got)
	}
	second := postForm(t, s, s.translate, question)
	if got := second.Header().Get("X-Plan-Cache"); got != "hit" {
		t.Errorf("repeat translation X-Plan-Cache = %q, want hit", got)
	}
}

// TestPlanCacheHeaderBypass: with the cache disabled (-plan-cache 0,
// the test default) the header reports bypass.
func TestPlanCacheHeaderBypass(t *testing.T) {
	s := testServer(t)
	rec := postForm(t, s, s.translate, question)
	if got := rec.Header().Get("X-Plan-Cache"); got != "bypass" {
		t.Errorf("X-Plan-Cache = %q, want bypass", got)
	}
}

// TestAPIStats: the JSON stats endpoint reports cache and admission
// counters a load generator scrapes.
func TestAPIStats(t *testing.T) {
	s, err := newServer(serverConfig{planCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	s.timeout = 0
	t.Cleanup(s.sess.Close)

	postForm(t, s, s.translate, question)
	postForm(t, s, s.translate, question)

	rec := httptest.NewRecorder()
	s.apiStats(rec, httptest.NewRequest("GET", "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp statsResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCache == nil {
		t.Fatal("stats lack the plan cache section")
	}
	if resp.PlanCache.Hits != 1 || resp.PlanCache.Misses != 1 {
		t.Errorf("plan cache stats = %+v, want 1 hit / 1 miss", *resp.PlanCache)
	}
	if resp.Admission.MaxInflight != defaultMaxInflight {
		t.Errorf("admission max inflight = %d, want default %d", resp.Admission.MaxInflight, defaultMaxInflight)
	}
}
