// Command nl2cm translates natural-language questions into OASSIS-QL
// crowd-mining queries, optionally interacting with the user (IX
// verification, disambiguation, significance values, projection) and
// optionally executing the result against the built-in ontology and
// simulated crowd.
//
// Usage:
//
//	nl2cm [flags] [question...]
//
// With no question on the command line, questions are read from stdin,
// one per line.
//
// Flags:
//
//	-interactive     enable all interaction points (prompts on stdin)
//	-trace           print the administrator-mode module trace
//	-execute         run the query on the OASSIS engine substitute
//	-backend name    emit the query in another dialect (oassisql, sql,
//	                 mongodb, cypher; comma-separate for several)
//	-crowd int       simulated crowd size (default 100)
//	-seed int        crowd seed (default 7)
//	-patterns file   load IX detection patterns from an admin file
//	-vocab dir       load vocabularies (*.txt) from a directory
//	-feedback file   persist disambiguation feedback across runs
//	-dump-config dir write the default patterns and vocabularies to dir
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"nl2cm"
	"nl2cm/internal/ix"
	"nl2cm/internal/qgen"
)

func main() {
	interactive := flag.Bool("interactive", false, "enable user interaction points")
	trace := flag.Bool("trace", false, "print the admin-mode module trace")
	execute := flag.Bool("execute", false, "execute the query on the simulated crowd")
	backend := flag.String("backend", "", "backend dialect(s) to emit, comma-separated: "+strings.Join(nl2cm.Backends(), ", "))
	crowdSize := flag.Int("crowd", 100, "simulated crowd size")
	seed := flag.Int64("seed", 7, "crowd seed")
	patterns := flag.String("patterns", "", "IX detection pattern file")
	vocabDir := flag.String("vocab", "", "vocabulary directory (*.txt)")
	feedback := flag.String("feedback", "", "feedback persistence file")
	ontologyFile := flag.String("ontology", "", "load the knowledge base from an N-Triples file instead of the built-in demo ontology")
	dumpOntology := flag.String("dump-ontology", "", "write the demo ontology as N-Triples to a file and exit")
	dumpConfig := flag.String("dump-config", "", "write default patterns and vocabularies to a directory and exit")
	flag.Parse()

	if *dumpOntology != "" {
		f, err := os.Create(*dumpOntology)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			os.Exit(1)
		}
		err = nl2cm.DemoOntology().WriteNTriples(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			os.Exit(1)
		}
		fmt.Println("wrote demo ontology to", *dumpOntology)
		return
	}

	if *dumpConfig != "" {
		if err := dumpDefaults(*dumpConfig); err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			os.Exit(1)
		}
		fmt.Println("wrote default patterns and vocabularies to", *dumpConfig)
		return
	}

	onto := nl2cm.DemoOntology()
	if *ontologyFile != "" {
		f, err := os.Open(*ontologyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			os.Exit(1)
		}
		onto, err = nl2cm.ReadOntology(*ontologyFile, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			os.Exit(1)
		}
	}
	tr := nl2cm.NewTranslator(onto)
	if err := applyAdminConfig(tr, *patterns, *vocabDir, *feedback); err != nil {
		fmt.Fprintln(os.Stderr, "nl2cm:", err)
		os.Exit(1)
	}
	if *feedback != "" {
		defer func() {
			if err := tr.Generator.Feedback.Save(*feedback); err != nil {
				fmt.Fprintln(os.Stderr, "nl2cm:", err)
			}
		}()
	}
	var eng *nl2cm.Engine
	if *execute {
		c := nl2cm.NewCrowd(*crowdSize, *seed)
		eng = nl2cm.NewEngine(onto, c)
		demo := nl2cm.NewDemoEngine(onto)
		eng.Crowd.Truth = demo.Crowd.Truth
	}

	opt := nl2cm.Options{Trace: *trace}
	for _, name := range strings.Split(*backend, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := nl2cm.LookupBackend(name); !ok {
			fmt.Fprintf(os.Stderr, "nl2cm: unknown backend %q (have: %s)\n",
				name, strings.Join(nl2cm.Backends(), ", "))
			os.Exit(1)
		}
		opt.Backends = append(opt.Backends, name)
	}
	if *interactive {
		opt.Interactor = &nl2cm.ConsoleInteractor{R: os.Stdin, W: os.Stderr}
		opt.Policy = nl2cm.InteractivePolicy()
	}

	// Ctrl-C cancels the in-flight translation (dialogues included)
	// instead of killing the process outright, so deferred state (the
	// feedback file) is still saved.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	questions := flag.Args()
	if len(questions) > 0 {
		q := strings.Join(questions, " ")
		if err := handle(ctx, tr, eng, q, opt); err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if err := handle(ctx, tr, eng, q, opt); err != nil {
			fmt.Fprintln(os.Stderr, "nl2cm:", err)
			if ctx.Err() != nil {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "nl2cm: reading stdin:", err)
		os.Exit(1)
	}
}

func handle(ctx context.Context, tr *nl2cm.Translator, eng *nl2cm.Engine, question string, opt nl2cm.Options) error {
	res, err := tr.Translate(ctx, question, opt)
	if err != nil {
		return err
	}
	if !res.Verdict.Supported {
		fmt.Printf("This question is not supported (%s): %s\n", res.Verdict.Category, res.Verdict.Reason)
		for _, tip := range res.Verdict.Tips {
			fmt.Println("tip:", tip)
		}
		return nil
	}
	if opt.Trace {
		for _, s := range res.Trace {
			fmt.Printf("---- %s ----\n%s\n", s.Module, strings.TrimRight(s.Output, "\n"))
		}
		fmt.Println("---- Final query ----")
	}
	if len(opt.Backends) == 0 {
		fmt.Println(res.Query)
	}
	for _, name := range opt.Backends {
		rend := res.Renderings[name]
		if len(opt.Backends) > 1 {
			fmt.Printf("-- %s --\n", name)
		}
		fmt.Println(rend.Query)
		for _, n := range rend.Notes {
			fmt.Println("note:", n)
		}
	}
	if eng == nil {
		return nil
	}
	out, err := eng.Execute(ctx, res.Query)
	if err != nil {
		return fmt.Errorf("executing query: %w", err)
	}
	fmt.Printf("\n%d ontology bindings, %d crowd tasks\n", out.WhereBindings, out.TasksIssued)
	for _, sc := range out.Subclauses {
		fmt.Printf("subclause %d:\n", sc.Index+1)
		for _, t := range sc.Tasks {
			mark := " "
			if t.Significant {
				mark = "*"
			}
			fmt.Printf("  %s %.2f  %s\n", mark, t.Support, t.Question)
		}
	}
	fmt.Println("significant bindings:")
	if len(out.Bindings) == 0 {
		fmt.Println("  (none)")
	}
	for _, b := range out.Bindings {
		var parts []string
		for v, t := range b {
			parts = append(parts, "$"+v+" = "+t.Local())
		}
		fmt.Println("  " + strings.Join(parts, ", "))
	}
	return nil
}

// applyAdminConfig loads administrator-provided patterns, vocabularies
// and persisted feedback into the translator.
func applyAdminConfig(tr *nl2cm.Translator, patterns, vocabDir, feedback string) error {
	if patterns != "" {
		ps, err := ix.LoadPatternsFile(patterns)
		if err != nil {
			return err
		}
		tr.Detector.Patterns = ps
	}
	if vocabDir != "" {
		if _, err := ix.LoadVocabularyDir(tr.Detector.Vocabs, vocabDir); err != nil {
			return err
		}
	}
	if feedback != "" {
		f, err := qgen.LoadFeedback(feedback)
		if err != nil {
			return err
		}
		tr.Generator.Feedback = f
	}
	return nil
}

// dumpDefaults writes the shipped patterns and vocabularies so an
// administrator can edit them.
func dumpDefaults(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := ix.WriteDefaultPatterns(filepath.Join(dir, "patterns.ixp")); err != nil {
		return err
	}
	return ix.WriteVocabularyDir(ix.DefaultVocabularies(), filepath.Join(dir, "vocab"))
}
