package main

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"nl2cm"
)

// captureStdout runs fn with os.Stdout redirected and returns the output.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestHandleTranslateOnly(t *testing.T) {
	onto := nl2cm.DemoOntology()
	tr := nl2cm.NewTranslator(onto)
	out, err := captureStdout(t, func() error {
		return handle(context.Background(), tr, nil, "Which hotel in Vegas has the best thrill ride?", nl2cm.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SELECT VARIABLES") || !strings.Contains(out, "Las_Vegas") {
		t.Errorf("output:\n%s", out)
	}
}

func TestHandleUnsupported(t *testing.T) {
	onto := nl2cm.DemoOntology()
	tr := nl2cm.NewTranslator(onto)
	out, err := captureStdout(t, func() error {
		return handle(context.Background(), tr, nil, "How should I store coffee?", nl2cm.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not supported") || !strings.Contains(out, "tip:") {
		t.Errorf("output:\n%s", out)
	}
}

func TestHandleWithExecution(t *testing.T) {
	onto := nl2cm.DemoOntology()
	tr := nl2cm.NewTranslator(onto)
	eng := nl2cm.NewDemoEngine(onto)
	out, err := captureStdout(t, func() error {
		return handle(context.Background(), tr, eng,
			"What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
			nl2cm.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crowd tasks", "significant bindings", "Delaware_Park"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHandleWithTrace(t *testing.T) {
	onto := nl2cm.DemoOntology()
	tr := nl2cm.NewTranslator(onto)
	out, err := captureStdout(t, func() error {
		return handle(context.Background(), tr, nil, "Where do you visit in Buffalo?", nl2cm.Options{Trace: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NL Parser", "IX Detector", "Final query"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestApplyAdminConfig(t *testing.T) {
	dir := t.TempDir()
	if err := dumpDefaults(dir); err != nil {
		t.Fatal(err)
	}
	tr := nl2cm.NewTranslator(nl2cm.DemoOntology())
	err := applyAdminConfig(tr,
		dir+"/patterns.ixp",
		dir+"/vocab",
		dir+"/feedback.json", // missing file: fresh store
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Detector.Patterns) == 0 {
		t.Error("patterns not loaded")
	}
	// The reloaded configuration still reproduces the running example.
	res, err := tr.Translate(context.Background(), "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?", nl2cm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Query.Satisfying) != 2 {
		t.Errorf("reloaded config broke translation:\n%s", res.Query)
	}
}

func TestApplyAdminConfigErrors(t *testing.T) {
	tr := nl2cm.NewTranslator(nl2cm.DemoOntology())
	if err := applyAdminConfig(tr, "/nonexistent.ixp", "", ""); err == nil {
		t.Error("missing pattern file accepted")
	}
	if err := applyAdminConfig(tr, "", "/nonexistent-dir", ""); err == nil {
		t.Error("missing vocab dir accepted")
	}
}

func TestOntologyDumpAndReload(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/onto.nt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl2cm.DemoOntology().WriteNTriples(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	onto, err := nl2cm.ReadOntology("custom", g)
	if err != nil {
		t.Fatal(err)
	}
	tr := nl2cm.NewTranslator(onto)
	res, err := tr.Translate(context.Background(), "Which parks are in Buffalo?", nl2cm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Query.Where.Triples) == 0 {
		t.Errorf("reloaded ontology broke translation:\n%s", res.Query)
	}
}
