// Administrator scenario: the paper's §2.3 argues for declarative IX
// detection patterns precisely because "a system administrator [can]
// easily manage, change or add the predefined set of patterns". This
// example dumps the shipped configuration to disk, edits it — adding a
// new detection pattern and a new vocabulary for first-person future
// wishes ("I wanna try...") — and shows the detector picking up the
// change without recompilation.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nl2cm"
	"nl2cm/internal/ix"
)

func main() {
	dir, err := os.MkdirTemp("", "nl2cm-admin")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Dump the shipped configuration.
	patternFile := filepath.Join(dir, "patterns.ixp")
	vocabDir := filepath.Join(dir, "vocab")
	if err := ix.WriteDefaultPatterns(patternFile); err != nil {
		log.Fatal(err)
	}
	if err := ix.WriteVocabularyDir(ix.DefaultVocabularies(), vocabDir); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dumped default patterns and vocabularies to", dir)

	// 2. The administrator appends a new pattern and a new vocabulary.
	newPattern := `
# Wish individuality: a first-person intention ("I wanna try the wings").
PATTERN wish_intention TYPE syntactic ANCHOR $v
{$v auxiliary $m
FILTER(WORD($m) IN V_wish)}
`
	f, err := os.OpenFile(patternFile, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteString(newPattern); err != nil {
		log.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(vocabDir, "V_wish.txt"),
		[]byte("# first-person future wishes\nwanna\ngonna\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	// 3. Reload: the detector now knows the new pattern.
	patterns, err := ix.LoadPatternsFile(patternFile)
	if err != nil {
		log.Fatal(err)
	}
	vocabs := ix.DefaultVocabularies()
	if _, err := ix.LoadVocabularyDir(vocabs, vocabDir); err != nil {
		log.Fatal(err)
	}
	detector := &ix.Detector{Patterns: patterns, Vocabs: vocabs}
	fmt.Printf("loaded %d patterns (was %d)\n", len(patterns), len(ix.DefaultPatterns()))

	// 4. Run the customized detector inside the full pipeline.
	tr := nl2cm.NewTranslator(nl2cm.DemoOntology())
	tr.Detector = detector

	question := "I wanna try the bean chili at Anchor Bar."
	res, err := tr.Translate(context.Background(), question, nl2cm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquestion: %q\n", question)
	for _, x := range res.IXs {
		fmt.Printf("detected IX %q (types %v, pattern %s)\n",
			x.Text(res.Graph), x.Types, x.Patterns[0].Name)
	}
	fmt.Println("\nquery:")
	fmt.Println(res.Query)
}
