// Forum scenario: the demonstration's first stage — translating
// real-life NL requests collected from web forums (the Yahoo! Answers
// substitute corpus) and observing which parts of each sentence became
// general (WHERE) and which individual (SATISFYING) query parts. Rejected
// questions are shown with their rephrasing tips.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"nl2cm"
)

func main() {
	onto := nl2cm.DemoOntology()
	translator := nl2cm.NewTranslator(onto)

	byDomain := map[string][]nl2cm.Question{}
	var domains []string
	for _, q := range nl2cm.Corpus() {
		if _, ok := byDomain[q.Domain]; !ok {
			domains = append(domains, q.Domain)
		}
		byDomain[q.Domain] = append(byDomain[q.Domain], q)
	}

	ok, rejected, failed := 0, 0, 0
	for _, d := range domains {
		fmt.Printf("======== domain: %s ========\n", d)
		for _, q := range byDomain[d] {
			res, err := translator.Translate(context.Background(), q.Text, nl2cm.Options{})
			if err != nil {
				log.Printf("ERROR %s: %v", q.ID, err)
				failed++
				continue
			}
			if !res.Verdict.Supported {
				rejected++
				fmt.Printf("\n[%s] %q\n  REJECTED (%s)\n", q.ID, q.Text, res.Verdict.Category)
				for _, tip := range res.Verdict.Tips {
					fmt.Printf("  tip: %s\n", tip)
				}
				continue
			}
			ok++
			fmt.Printf("\n[%s] %q\n", q.ID, q.Text)
			// Show the correspondence between sentence parts and query
			// parts (the demo's first stage).
			var individual []string
			for _, x := range res.IXs {
				individual = append(individual, fmt.Sprintf("%q (%s)", x.Text(res.Graph), strings.Join(x.Types, "+")))
			}
			if len(individual) > 0 {
				fmt.Printf("  individual parts: %s\n", strings.Join(individual, ", "))
			} else {
				fmt.Printf("  individual parts: none (plain ontology query)\n")
			}
			fmt.Println(indent(res.Query.String(), "  | "))
		}
	}
	fmt.Printf("\n%d translated, %d rejected with tips, %d errors\n", ok, rejected, failed)
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
