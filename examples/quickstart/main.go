// Quickstart: translate the paper's running example into OASSIS-QL and
// print the query of Figure 1, then run it on the simulated crowd.
package main

import (
	"context"
	"fmt"
	"log"

	"nl2cm"
)

func main() {
	// 1. Build the general-knowledge ontology (the LinkedGeoData +
	// DBPedia substitute) and a translator over it.
	onto := nl2cm.DemoOntology()
	translator := nl2cm.NewTranslator(onto)

	// 2. Translate a natural-language question that mixes general data
	// (places near a hotel) with individual data (interestingness
	// opinions, visiting habits).
	question := "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?"
	res, err := translator.Translate(context.Background(), question, nl2cm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Verdict.Supported {
		log.Fatalf("question not supported: %s", res.Verdict.Reason)
	}
	fmt.Println("OASSIS-QL query:")
	fmt.Println(res.Query)

	// 3. Execute the query: the WHERE clause runs on the ontology, the
	// SATISFYING clause on a simulated crowd of 100 members.
	engine := nl2cm.NewDemoEngine(onto)
	out, err := engine.Execute(context.Background(), res.Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d ontology bindings, %d crowd tasks issued\n", out.WhereBindings, out.TasksIssued)
	fmt.Println("significant answers:")
	for _, b := range out.Bindings {
		fmt.Println("  -", onto.Label(b["x"]))
	}
}
