// Travel scenario: a scripted volunteer user interacting with NL2CM, as
// in the demonstration's second stage. The user asks an ambiguous travel
// question, verifies the detected individual expressions, resolves the
// "Buffalo" ambiguity, picks significance values, and finally the query
// runs on the simulated crowd. The administrator-mode trace is printed
// alongside, as on the demo's third monitor.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"nl2cm"
)

func main() {
	onto := nl2cm.DemoOntology()
	translator := nl2cm.NewTranslator(onto)

	question := "Where do you visit in Buffalo?"
	fmt.Printf("User question: %q\n\n", question)

	// The scripted user: accepts all detected IXs, picks the second
	// "Buffalo" candidate first (Illinois) to see the system learn, and
	// sets a 0.2 support threshold.
	user := &nl2cm.ScriptedInteractor{
		DisambiguationAnswers: []int{1},
		ThresholdAnswers:      []float64{0.2},
	}
	opts := nl2cm.Options{
		Interactor: user,
		Policy:     nl2cm.InteractivePolicy(),
		Trace:      true,
	}
	res, err := translator.Translate(context.Background(), question, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== administrator mode (module outputs) ===")
	for _, stage := range res.Trace {
		fmt.Printf("--- %s ---\n%s\n", stage.Module, strings.TrimRight(stage.Output, "\n"))
	}
	fmt.Println("\n=== dialogue transcript ===")
	for _, ex := range res.Interactions {
		fmt.Printf("[%s] %s\n  -> %s\n", ex.Point, ex.Question, ex.Answer)
	}
	fmt.Println("\n=== final query (user chose Buffalo, IL) ===")
	fmt.Println(res.Query)

	// The system recorded the user's choice; asking again non-
	// interactively now prefers Buffalo, IL thanks to learned feedback.
	res2, err := translator.Translate(context.Background(), question, nl2cm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== same question again, no interaction (learned ranking) ===")
	fmt.Println(res2.Query)

	// Execute the first query with the crowd.
	engine := nl2cm.NewDemoEngine(onto)
	out, err := engine.Execute(context.Background(), res.Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== crowd execution: %d tasks ===\n", out.TasksIssued)
	for _, sc := range out.Subclauses {
		for _, t := range sc.Tasks {
			if t.Significant {
				fmt.Printf("  %.2f  %s\n", t.Support, t.Question)
			}
		}
	}
}
