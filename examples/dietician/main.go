// Dietician scenario: the paper's second motivating example — "a
// dietician wishing to study the culinary preferences in some population,
// focusing on food dishes rich in fiber". Nutritional facts come from the
// general knowledge base; the eating habits come from the crowd.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"nl2cm"
)

func main() {
	onto := nl2cm.DemoOntology()
	translator := nl2cm.NewTranslator(onto)
	engine := nl2cm.NewDemoEngine(onto)

	questions := []string{
		"Which dishes rich in fiber do people cook in the winter?",
		"What do you eat for breakfast?",
		"Is oatmeal a good breakfast for adults?",
	}
	for _, q := range questions {
		fmt.Printf("==== %q\n", q)
		res, err := translator.Translate(context.Background(), q, nl2cm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Verdict.Supported {
			fmt.Println("not supported:", res.Verdict.Reason)
			continue
		}
		fmt.Println(res.Query)
		out, err := engine.Execute(context.Background(), res.Query)
		if err != nil {
			log.Fatal(err)
		}
		// Rank the crowd's answers: the dietician cares about habit
		// frequencies across the population.
		type row struct {
			question string
			support  float64
		}
		var rows []row
		for _, sc := range out.Subclauses {
			for _, t := range sc.Tasks {
				if t.Significant {
					rows = append(rows, row{t.Question, t.Support})
				}
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].support > rows[j].support })
		fmt.Println("\ncrowd findings (significant only):")
		for _, r := range rows {
			fmt.Printf("  %.0f%%  %s\n", r.support*100, r.question)
		}
		fmt.Println()
	}
}
